"""Survey-package analog: weighted estimation through a database driver.

Reproduces the two benchmarked phases of the ACS analysis script (paper
Figures 7 and 8):

* **load phase** — client-side preprocessing (recodes, derived variables)
  followed by ``dbWriteTable`` of the full 274-column table;
* **statistics phase** — a suite of survey estimates.  SQL pulls exactly
  the columns each estimate needs from the database; the statistical
  computation (weighted means/totals/quantiles and successive-difference-
  replication standard errors) runs client-side in NumPy, matching the
  paper's *"For operations were SQL is insufficient, the data is
  transferred from the database to R and the data is then processed inside
  R"*.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.acs.gen import ACS_COLUMNS, STATES, acs_schema_sql

__all__ = ["preprocess", "load_phase", "statistics_phase", "sdr_standard_error"]

TABLE = "acs_persons"
_N_REPLICATES = 80


def preprocess(data: dict) -> dict:
    """Client-side wrangling before the database write (the "R part").

    Derives the recode columns Damico's scripts add before storage; this
    work is identical for every database, which is why Figure 7's spread is
    smaller than Figure 5's.
    """
    out = dict(data)
    age = data["agep"]
    out["agep"] = age  # untouched, listed for clarity
    # recodes replace a handful of flag columns (column count stays 274)
    out["f001p"] = np.digitize(age, [5, 18, 25, 35, 45, 55, 65, 75]).astype(
        np.int8
    )  # age bucket
    out["f002p"] = ((data["wagp"] > 0) & (data["wkhp"] >= 35)).astype(np.int8)
    out["f003p"] = (data["pincp"] < 15_000).astype(np.int8)  # low income
    return out


def load_phase(adapter, data: dict, rows_per_insert: int | None = None) -> int:
    """Preprocess client-side, then persist via the adapter's bulk path.

    ``rows_per_insert`` overrides the socket protocols' statement batching
    (used for *untimed* setup loads only; the measured Figure 7 load uses
    each protocol's native behavior).
    """
    prepared = preprocess(data)
    type_names = [sql_type for _, sql_type in ACS_COLUMNS]
    adapter.execute(f"DROP TABLE IF EXISTS {TABLE}")
    return adapter.db_write_table(
        TABLE, prepared, type_names, create_sql=acs_schema_sql(TABLE),
        rows_per_insert=rows_per_insert,
    )


def sdr_standard_error(theta: float, replicate_estimates: np.ndarray) -> float:
    """Successive-difference-replication SE (the survey package's default
    for ACS): ``sqrt(4/80 * sum((theta_r - theta)^2))``."""
    deviations = np.asarray(replicate_estimates, dtype=np.float64) - theta
    return float(np.sqrt(4.0 / len(deviations) * np.sum(deviations**2)))


def _weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    total = float(weights.sum())
    if total == 0:
        return float("nan")
    return float(np.dot(values.astype(np.float64), weights) / total)


def _weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float
) -> float:
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order].astype(np.float64))
    if not len(cum) or cum[-1] == 0:
        return float("nan")
    target = q * cum[-1]
    index = int(np.searchsorted(cum, target))
    return float(values[order][min(index, len(order) - 1)])


def _replicate_columns(prefix: str) -> list:
    return [f"{prefix}{i}" for i in range(1, _N_REPLICATES + 1)]


def statistics_phase(adapter) -> dict:
    """Run the survey-statistics suite; returns {statistic: value}.

    Each estimate issues one narrow SQL pull (exactly the columns it
    needs — the access pattern that favors columnar storage), then computes
    the weighted statistic and its SDR standard error in NumPy.
    """
    results: dict = {}
    rep_cols = _replicate_columns("pwgtp")

    # 1. weighted population total + SE
    cols = adapter.query_columns(
        f"SELECT pwgtp, {', '.join(rep_cols)} FROM {TABLE}"
    )
    weight = np.asarray(cols["pwgtp"], dtype=np.float64)
    total = float(weight.sum())
    replicate_totals = [
        float(np.asarray(cols[c], dtype=np.float64).sum()) for c in rep_cols
    ]
    results["population_total"] = total
    results["population_total_se"] = sdr_standard_error(total, replicate_totals)

    # 2. population by state (grouped total, computed in SQL)
    rows = adapter.query_rows(
        f"SELECT st, sum(pwgtp) AS pop FROM {TABLE} GROUP BY st ORDER BY st"
    )
    results["population_by_state"] = {int(st): float(pop) for st, pop in rows}

    # 3. weighted mean age + SE
    cols = adapter.query_columns(
        f"SELECT agep, pwgtp, {', '.join(rep_cols)} FROM {TABLE}"
    )
    age = np.asarray(cols["agep"], dtype=np.float64)
    weight = np.asarray(cols["pwgtp"], dtype=np.float64)
    mean_age = _weighted_mean(age, weight)
    rep_means = [
        _weighted_mean(age, np.asarray(cols[c], dtype=np.float64))
        for c in rep_cols
    ]
    results["mean_age"] = mean_age
    results["mean_age_se"] = sdr_standard_error(mean_age, rep_means)

    # 4. median personal income (weighted quantile over a filtered domain)
    cols = adapter.query_columns(
        f"SELECT pincp, pwgtp FROM {TABLE} WHERE agep >= 18"
    )
    results["median_income_adults"] = _weighted_quantile(
        np.asarray(cols["pincp"], dtype=np.float64),
        np.asarray(cols["pwgtp"], dtype=np.float64),
        0.5,
    )

    # 5. domain estimate: mean wage of employed persons by sex
    by_sex = {}
    for sex in (1, 2):
        cols = adapter.query_columns(
            f"SELECT wagp, pwgtp FROM {TABLE} WHERE esr = 1 AND sex = {sex}"
        )
        by_sex[sex] = _weighted_mean(
            np.asarray(cols["wagp"], dtype=np.float64),
            np.asarray(cols["pwgtp"], dtype=np.float64),
        )
    results["mean_wage_by_sex"] = by_sex

    # 6. full-time share by state (SQL aggregate over the derived recode)
    rows = adapter.query_rows(
        f"SELECT st, sum(f002p * pwgtp) AS ft, sum(pwgtp) AS tot "
        f"FROM {TABLE} GROUP BY st ORDER BY st"
    )
    results["fulltime_share_by_state"] = {
        int(st): (float(ft) / float(tot) if tot else float("nan"))
        for st, ft, tot in rows
    }

    # 7. income deciles (weighted)
    cols = adapter.query_columns(f"SELECT pincp, pwgtp FROM {TABLE}")
    values = np.asarray(cols["pincp"], dtype=np.float64)
    weights = np.asarray(cols["pwgtp"], dtype=np.float64)
    results["income_deciles"] = [
        _weighted_quantile(values, weights, q / 10.0) for q in range(1, 10)
    ]
    return results
