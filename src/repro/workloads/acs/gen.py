"""Synthetic ACS person-level microdata generator.

Matches the structural properties the paper's benchmark depends on:

* **274 columns** — ids, demographics, income/labor variables, the person
  weight ``pwgtp`` plus 80 replicate weights ``pwgtp1..pwgtp80``, the
  household weight ``wgtp`` plus its 80 replicates, and ~100 allocation
  flags (real PUMS files are mostly flags and weights too);
* five states' worth of rows (the paper subsets five states of 2016);
* integer-coded categoricals, so a column store scans only what a
  statistic touches while a row store must decode 274 fields per row.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ACS_COLUMNS", "generate_acs", "acs_schema_sql", "STATES"]

#: FIPS-like codes of the five benchmark states.
STATES = [6, 36, 48, 12, 17]  # CA, NY, TX, FL, IL

_DEMOGRAPHICS = [
    ("agep", "INTEGER"),  # age
    ("sex", "TINYINT"),
    ("rac1p", "TINYINT"),  # race recode
    ("hisp", "TINYINT"),
    ("schl", "TINYINT"),  # education attainment
    ("esr", "TINYINT"),  # employment status
    ("mar", "TINYINT"),  # marital status
    ("cit", "TINYINT"),  # citizenship
    ("dis", "TINYINT"),  # disability
    ("cow", "TINYINT"),  # class of worker
    ("wkhp", "INTEGER"),  # hours worked
    ("jwmnp", "INTEGER"),  # commute minutes
]

_INCOME = [
    ("wagp", "INTEGER"),  # wages
    ("pincp", "INTEGER"),  # total person income
    ("semp", "INTEGER"),  # self-employment
    ("intp", "INTEGER"),  # interest
    ("retp", "INTEGER"),  # retirement
    ("ssip", "INTEGER"),  # SSI
    ("pap", "INTEGER"),  # public assistance
    ("oip", "INTEGER"),  # other income
]

_N_REPLICATES = 80


def _column_spec() -> list:
    columns = [
        ("serialno", "VARCHAR(13)"),
        ("sporder", "TINYINT"),
        ("st", "TINYINT"),
        ("puma", "INTEGER"),
    ]
    columns += _DEMOGRAPHICS + _INCOME
    columns.append(("pwgtp", "INTEGER"))
    columns += [(f"pwgtp{i}", "INTEGER") for i in range(1, _N_REPLICATES + 1)]
    columns.append(("wgtp", "INTEGER"))
    columns += [(f"wgtp{i}", "INTEGER") for i in range(1, _N_REPLICATES + 1)]
    flags_needed = 274 - len(columns)
    columns += [(f"f{i:03d}p", "TINYINT") for i in range(1, flags_needed + 1)]
    return columns


#: (name, sql_type) for all 274 columns.
ACS_COLUMNS = _column_spec()
assert len(ACS_COLUMNS) == 274


def generate_acs(nrows: int = 20_000, seed: int = 7) -> dict:
    """Generate ``nrows`` synthetic person records as {column: array}."""
    rng = np.random.default_rng(seed)
    data: dict = {}
    data["serialno"] = np.char.add(
        "2016", np.char.zfill(rng.integers(0, 10**8, nrows).astype("U9"), 9)
    ).astype(object)
    data["sporder"] = rng.integers(1, 7, nrows).astype(np.int8)
    data["st"] = np.asarray(STATES, dtype=np.int8)[
        rng.integers(0, len(STATES), nrows)
    ]
    data["puma"] = rng.integers(100, 5000, nrows).astype(np.int32)

    age = rng.integers(0, 95, nrows)
    data["agep"] = age.astype(np.int32)
    data["sex"] = rng.integers(1, 3, nrows).astype(np.int8)
    data["rac1p"] = rng.integers(1, 10, nrows).astype(np.int8)
    data["hisp"] = rng.integers(1, 25, nrows).astype(np.int8)
    data["schl"] = np.minimum(24, 1 + (age // 4)).astype(np.int8)
    working_age = (age >= 16) & (age < 70)
    employed = working_age & (rng.random(nrows) < 0.62)
    data["esr"] = np.where(
        employed, 1, np.where(working_age, rng.integers(2, 7, nrows), 6)
    ).astype(np.int8)
    data["mar"] = rng.integers(1, 6, nrows).astype(np.int8)
    data["cit"] = rng.integers(1, 6, nrows).astype(np.int8)
    data["dis"] = (rng.random(nrows) < 0.13).astype(np.int8) + 1
    data["cow"] = np.where(employed, rng.integers(1, 9, nrows), 0).astype(np.int8)
    data["wkhp"] = np.where(employed, rng.integers(5, 70, nrows), 0).astype(
        np.int32
    )
    data["jwmnp"] = np.where(employed, rng.integers(1, 120, nrows), 0).astype(
        np.int32
    )

    wages = np.where(
        employed, np.round(np.exp(rng.normal(10.4, 0.8, nrows))), 0
    )
    data["wagp"] = np.minimum(wages, 500_000).astype(np.int32)
    other = {
        "semp": 0.08, "intp": 0.25, "retp": 0.15, "ssip": 0.05,
        "pap": 0.03, "oip": 0.10,
    }
    total = data["wagp"].astype(np.int64).copy()
    for name, rate in other.items():
        has = rng.random(nrows) < rate
        amount = np.where(
            has, np.round(np.exp(rng.normal(8.5, 1.0, nrows))), 0
        ).astype(np.int64)
        data[name] = np.minimum(amount, 200_000).astype(np.int32)
        total += data[name]
    data["pincp"] = np.minimum(total, 800_000).astype(np.int32)

    # person weight ~ lognormal around 100, replicates jittered around it
    # (successive difference replication: replicates scatter around the
    # full-sample weight)
    pwgtp = np.maximum(1, np.round(np.exp(rng.normal(4.6, 0.35, nrows))))
    data["pwgtp"] = pwgtp.astype(np.int32)
    for i in range(1, _N_REPLICATES + 1):
        factor = rng.choice([0.55, 1.45], nrows)
        data[f"pwgtp{i}"] = np.maximum(
            0, np.round(pwgtp * factor * rng.normal(1.0, 0.05, nrows))
        ).astype(np.int32)
    wgtp = np.maximum(0, np.round(pwgtp * rng.normal(0.8, 0.2, nrows)))
    data["wgtp"] = wgtp.astype(np.int32)
    for i in range(1, _N_REPLICATES + 1):
        factor = rng.choice([0.55, 1.45], nrows)
        data[f"wgtp{i}"] = np.maximum(
            0, np.round(wgtp * factor * rng.normal(1.0, 0.05, nrows))
        ).astype(np.int32)

    for name, _ in ACS_COLUMNS:
        if name.startswith("f") and name.endswith("p") and name[1:4].isdigit():
            data[name] = (rng.random(nrows) < 0.07).astype(np.int8)

    assert len(data) == 274
    return data


def acs_schema_sql(table: str = "acs_persons") -> str:
    """CREATE TABLE statement for the 274-column person table."""
    columns = ",\n  ".join(f"{name} {sql_type}" for name, sql_type in ACS_COLUMNS)
    return f"CREATE TABLE {table} (\n  {columns}\n)"
