"""American Community Survey workload (paper section 4.3).

The paper runs Anthony Damico's ACS analysis scripts: census microdata is
preprocessed client-side, stored persistently through a database driver,
and analyzed with the R ``survey`` package (weighted estimates with
successive-difference-replication standard errors).  Real PUMS files are
access-gated and large; :mod:`repro.workloads.acs.gen` synthesizes
person-level microdata with the same *shape* — 274 columns dominated by
the 2x80 replicate-weight columns plus categorical recodes — and
:mod:`repro.workloads.acs.analysis` reimplements the survey-package
estimation pipeline on top of any database adapter.
"""

from repro.workloads.acs.gen import ACS_COLUMNS, generate_acs, acs_schema_sql
from repro.workloads.acs.analysis import (
    load_phase,
    statistics_phase,
    preprocess,
)

__all__ = [
    "ACS_COLUMNS",
    "generate_acs",
    "acs_schema_sql",
    "preprocess",
    "load_phase",
    "statistics_phase",
]
