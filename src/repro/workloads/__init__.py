"""Benchmark workloads: TPC-H (dbgen clone + Q1-Q10) and the ACS survey."""
