"""TPC-H workload: deterministic dbgen clone, schema DDL, queries Q1-Q10."""

from repro.workloads.tpch.gen import TABLES, generate, load, schema_statements
from repro.workloads.tpch.queries import QUERIES, query

__all__ = [
    "TABLES",
    "generate",
    "load",
    "schema_statements",
    "QUERIES",
    "query",
]
