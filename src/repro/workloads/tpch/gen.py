"""Deterministic pure-Python/NumPy clone of TPC-H dbgen.

Generates all eight tables with the official schema, key structure,
cardinality ratios and value distributions (TPC-H specification v2.17);
text fields use compact word-soup comments so memory stays proportional to
the scale factor.  The scale factor has the standard meaning: SF 1 is
~6 M lineitem rows; the benchmarks here default to fractional SFs.

Dates are epoch-day ``int32`` arrays, decimals ``float64`` (converted to
scaled-int storage by the append path), keys ``int32`` — so the bulk-append
fast path adopts most columns without conversion.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.storage.types import date_to_days

__all__ = ["TABLES", "generate", "load", "schema_statements", "table_row_counts"]

TABLES = [
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
_TYPE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_P_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium",
]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "requests", "packages", "accounts", "instructions", "theodolites",
    "pinto", "beans", "foxes", "ideas", "dependencies", "platelets",
    "excuses", "asymptotes", "courts", "dolphins", "multipliers", "sauternes",
    "warthogs", "frets", "dinos", "attainments", "somas", "braids",
]

_DATE_LO = date_to_days(_dt.date(1992, 1, 1))
_DATE_HI = date_to_days(_dt.date(1998, 8, 2))
_CURRENT = date_to_days(_dt.date(1995, 6, 17))


def _comments(rng: np.random.Generator, n: int, words: int = 3) -> np.ndarray:
    """Word-soup text column, as an object array."""
    pool = np.asarray(_COMMENT_WORDS)
    parts = [pool[rng.integers(0, len(pool), n)] for _ in range(words)]
    out = parts[0]
    for part in parts[1:]:
        out = np.char.add(np.char.add(out, " "), part)
    return out.astype(object)


def _numbered(prefix: str, keys: np.ndarray) -> np.ndarray:
    """'Prefix#000000001'-style name columns."""
    return np.char.add(
        f"{prefix}#", np.char.zfill(keys.astype("U9"), 9)
    ).astype(object)


def _phones(rng: np.random.Generator, nation_keys: np.ndarray) -> np.ndarray:
    country = np.char.zfill(((nation_keys + 10) % 35).astype("U2"), 2)
    local = rng.integers(100, 999, (3, len(nation_keys))).astype("U3")
    out = np.char.add(country, "-")
    for part in local:
        out = np.char.add(np.char.add(out, part), "-")
    return np.char.rstrip(out, "-").astype(object)


def table_row_counts(scale_factor: float) -> dict:
    """Row counts per table at a given scale factor (lineitem is ~value)."""
    sf = scale_factor
    return {
        "region": 5,
        "nation": 25,
        "supplier": max(1, round(10_000 * sf)),
        "customer": max(1, round(150_000 * sf)),
        "part": max(1, round(200_000 * sf)),
        "partsupp": max(4, round(200_000 * sf) * 4),
        "orders": max(1, round(1_500_000 * sf)),
        "lineitem": None,  # 1-7 lines per order
    }


def generate(scale_factor: float = 0.01, seed: int = 42) -> dict:
    """All eight TPC-H tables as {table: {column: np.ndarray}}."""
    rng = np.random.default_rng(seed)
    counts = table_row_counts(scale_factor)
    data: dict = {}

    region_keys = np.arange(5, dtype=np.int32)
    data["region"] = {
        "r_regionkey": region_keys,
        "r_name": np.asarray(_REGIONS, dtype=object),
        "r_comment": _comments(rng, 5),
    }

    nation_keys = np.arange(25, dtype=np.int32)
    data["nation"] = {
        "n_nationkey": nation_keys,
        "n_name": np.asarray([n for n, _ in _NATIONS], dtype=object),
        "n_regionkey": np.asarray([r for _, r in _NATIONS], dtype=np.int32),
        "n_comment": _comments(rng, 25),
    }

    n_supp = counts["supplier"]
    supp_keys = np.arange(1, n_supp + 1, dtype=np.int32)
    supp_nations = rng.integers(0, 25, n_supp).astype(np.int32)
    data["supplier"] = {
        "s_suppkey": supp_keys,
        "s_name": _numbered("Supplier", supp_keys),
        "s_address": _comments(rng, n_supp, words=2),
        "s_nationkey": supp_nations,
        "s_phone": _phones(rng, supp_nations),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supp), 2),
        "s_comment": _comments(rng, n_supp),
    }

    n_cust = counts["customer"]
    cust_keys = np.arange(1, n_cust + 1, dtype=np.int32)
    cust_nations = rng.integers(0, 25, n_cust).astype(np.int32)
    data["customer"] = {
        "c_custkey": cust_keys,
        "c_name": _numbered("Customer", cust_keys),
        "c_address": _comments(rng, n_cust, words=2),
        "c_nationkey": cust_nations,
        "c_phone": _phones(rng, cust_nations),
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_cust), 2),
        "c_mktsegment": np.asarray(_SEGMENTS, dtype=object)[
            rng.integers(0, len(_SEGMENTS), n_cust)
        ],
        "c_comment": _comments(rng, n_cust),
    }

    n_part = counts["part"]
    part_keys = np.arange(1, n_part + 1, dtype=np.int32)
    name_pool = np.asarray(_P_NAME_WORDS)
    p_name = name_pool[rng.integers(0, len(name_pool), n_part)]
    for _ in range(4):
        p_name = np.char.add(
            np.char.add(p_name, " "),
            name_pool[rng.integers(0, len(name_pool), n_part)],
        )
    mfgr = rng.integers(1, 6, n_part)
    brand = mfgr * 10 + rng.integers(1, 6, n_part)
    p_type = np.char.add(
        np.char.add(
            np.asarray(_TYPE_1)[rng.integers(0, len(_TYPE_1), n_part)], " "
        ),
        np.char.add(
            np.char.add(
                np.asarray(_TYPE_2)[rng.integers(0, len(_TYPE_2), n_part)], " "
            ),
            np.asarray(_TYPE_3)[rng.integers(0, len(_TYPE_3), n_part)],
        ),
    )
    retail_price = np.round(
        90000 + (part_keys % 200001) / 10.0 + 100.0 * (part_keys % 1000), 2
    ) / 100.0
    data["part"] = {
        "p_partkey": part_keys,
        "p_name": p_name.astype(object),
        "p_mfgr": np.char.add("Manufacturer#", mfgr.astype("U1")).astype(object),
        "p_brand": np.char.add("Brand#", brand.astype("U2")).astype(object),
        "p_type": p_type.astype(object),
        "p_size": rng.integers(1, 51, n_part).astype(np.int32),
        "p_container": np.asarray(_CONTAINERS, dtype=object)[
            rng.integers(0, len(_CONTAINERS), n_part)
        ],
        "p_retailprice": retail_price,
        "p_comment": _comments(rng, n_part, words=2),
    }

    # partsupp: 4 suppliers per part, spec's supplier spreading formula
    ps_partkey = np.repeat(part_keys, 4)
    i = np.tile(np.arange(4), n_part)
    ps_suppkey = (
        (ps_partkey + i * (n_supp // 4 + (ps_partkey - 1) // n_supp)) % n_supp
    ) + 1
    data["partsupp"] = {
        "ps_partkey": ps_partkey.astype(np.int32),
        "ps_suppkey": ps_suppkey.astype(np.int32),
        "ps_availqty": rng.integers(1, 10_000, len(ps_partkey)).astype(np.int32),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, len(ps_partkey)), 2),
        "ps_comment": _comments(rng, len(ps_partkey)),
    }

    n_orders = counts["orders"]
    order_keys = np.arange(1, n_orders + 1, dtype=np.int32) * 4 - 3
    # only two thirds of customers have orders (spec: odd custkeys skipped)
    o_custkey = rng.integers(1, n_cust + 1, n_orders).astype(np.int32)
    o_orderdate = rng.integers(_DATE_LO, _DATE_HI - 151, n_orders).astype(np.int32)
    data["orders"] = {
        "o_orderkey": order_keys,
        "o_custkey": o_custkey,
        "o_orderstatus": np.full(n_orders, "O", dtype=object),  # fixed below
        "o_totalprice": np.zeros(n_orders),  # filled from lineitem below
        "o_orderdate": o_orderdate,
        "o_orderpriority": np.asarray(_PRIORITIES, dtype=object)[
            rng.integers(0, len(_PRIORITIES), n_orders)
        ],
        "o_clerk": _numbered("Clerk", rng.integers(1, max(2, n_supp), n_orders)),
        "o_shippriority": np.zeros(n_orders, dtype=np.int32),
        "o_comment": _comments(rng, n_orders),
    }

    # lineitem: 1-7 lines per order
    lines_per_order = rng.integers(1, 8, n_orders)
    n_lines = int(lines_per_order.sum())
    l_orderkey = np.repeat(order_keys, lines_per_order)
    order_index = np.repeat(np.arange(n_orders), lines_per_order)
    starts = np.cumsum(lines_per_order) - lines_per_order
    l_linenumber = (np.arange(n_lines) - starts[order_index] + 1).astype(np.int32)
    l_partkey = rng.integers(1, n_part + 1, n_lines).astype(np.int32)
    supp_spread = rng.integers(0, 4, n_lines)
    l_suppkey = (
        (l_partkey + supp_spread * (n_supp // 4 + (l_partkey - 1) // n_supp))
        % n_supp
    ).astype(np.int32) + 1
    l_quantity = rng.integers(1, 51, n_lines).astype(np.float64)
    l_extendedprice = np.round(l_quantity * retail_price[l_partkey - 1], 2)
    l_discount = rng.integers(0, 11, n_lines) / 100.0
    l_tax = rng.integers(0, 9, n_lines) / 100.0
    l_shipdate = (
        data["orders"]["o_orderdate"][order_index]
        + rng.integers(1, 122, n_lines)
    ).astype(np.int32)
    l_commitdate = (
        data["orders"]["o_orderdate"][order_index]
        + rng.integers(30, 91, n_lines)
    ).astype(np.int32)
    l_receiptdate = (l_shipdate + rng.integers(1, 31, n_lines)).astype(np.int32)
    returned = l_receiptdate <= _CURRENT
    l_returnflag = np.where(
        returned, np.where(rng.random(n_lines) < 0.5, "R", "A"), "N"
    ).astype(object)
    l_linestatus = np.where(l_shipdate > _CURRENT, "O", "F").astype(object)
    data["lineitem"] = {
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": l_suppkey,
        "l_linenumber": l_linenumber,
        "l_quantity": l_quantity,
        "l_extendedprice": l_extendedprice,
        "l_discount": l_discount,
        "l_tax": l_tax,
        "l_returnflag": l_returnflag,
        "l_linestatus": l_linestatus,
        "l_shipdate": l_shipdate,
        "l_commitdate": l_commitdate,
        "l_receiptdate": l_receiptdate,
        "l_shipinstruct": np.asarray(_INSTRUCTS, dtype=object)[
            rng.integers(0, len(_INSTRUCTS), n_lines)
        ],
        "l_shipmode": np.asarray(_MODES, dtype=object)[
            rng.integers(0, len(_MODES), n_lines)
        ],
        "l_comment": _comments(rng, n_lines, words=2),
    }

    # consistent o_totalprice and o_orderstatus from the generated lines
    revenue = l_extendedprice * (1 - l_discount) * (1 + l_tax)
    totals = np.zeros(n_orders)
    np.add.at(totals, order_index, revenue)
    data["orders"]["o_totalprice"] = np.round(totals, 2)
    open_lines = np.zeros(n_orders, dtype=np.int64)
    np.add.at(open_lines, order_index, (l_linestatus == "O").astype(np.int64))
    all_open = open_lines == lines_per_order
    none_open = open_lines == 0
    data["orders"]["o_orderstatus"] = np.where(
        all_open, "O", np.where(none_open, "F", "P")
    ).astype(object)
    return data


def schema_statements() -> list:
    """CREATE TABLE DDL for all eight tables (TPC-H spec types)."""
    return [
        """CREATE TABLE region (
            r_regionkey INTEGER NOT NULL, r_name VARCHAR(25) NOT NULL,
            r_comment VARCHAR(152))""",
        """CREATE TABLE nation (
            n_nationkey INTEGER NOT NULL, n_name VARCHAR(25) NOT NULL,
            n_regionkey INTEGER NOT NULL, n_comment VARCHAR(152))""",
        """CREATE TABLE supplier (
            s_suppkey INTEGER NOT NULL, s_name VARCHAR(25) NOT NULL,
            s_address VARCHAR(40) NOT NULL, s_nationkey INTEGER NOT NULL,
            s_phone VARCHAR(15) NOT NULL, s_acctbal DECIMAL(15,2) NOT NULL,
            s_comment VARCHAR(101) NOT NULL)""",
        """CREATE TABLE customer (
            c_custkey INTEGER NOT NULL, c_name VARCHAR(25) NOT NULL,
            c_address VARCHAR(40) NOT NULL, c_nationkey INTEGER NOT NULL,
            c_phone VARCHAR(15) NOT NULL, c_acctbal DECIMAL(15,2) NOT NULL,
            c_mktsegment VARCHAR(10) NOT NULL, c_comment VARCHAR(117) NOT NULL)""",
        """CREATE TABLE part (
            p_partkey INTEGER NOT NULL, p_name VARCHAR(55) NOT NULL,
            p_mfgr VARCHAR(25) NOT NULL, p_brand VARCHAR(10) NOT NULL,
            p_type VARCHAR(25) NOT NULL, p_size INTEGER NOT NULL,
            p_container VARCHAR(10) NOT NULL,
            p_retailprice DECIMAL(15,2) NOT NULL, p_comment VARCHAR(23) NOT NULL)""",
        """CREATE TABLE partsupp (
            ps_partkey INTEGER NOT NULL, ps_suppkey INTEGER NOT NULL,
            ps_availqty INTEGER NOT NULL, ps_supplycost DECIMAL(15,2) NOT NULL,
            ps_comment VARCHAR(199) NOT NULL)""",
        """CREATE TABLE orders (
            o_orderkey INTEGER NOT NULL, o_custkey INTEGER NOT NULL,
            o_orderstatus VARCHAR(1) NOT NULL, o_totalprice DECIMAL(15,2) NOT NULL,
            o_orderdate DATE NOT NULL, o_orderpriority VARCHAR(15) NOT NULL,
            o_clerk VARCHAR(15) NOT NULL, o_shippriority INTEGER NOT NULL,
            o_comment VARCHAR(79) NOT NULL)""",
        """CREATE TABLE lineitem (
            l_orderkey INTEGER NOT NULL, l_partkey INTEGER NOT NULL,
            l_suppkey INTEGER NOT NULL, l_linenumber INTEGER NOT NULL,
            l_quantity DECIMAL(15,2) NOT NULL,
            l_extendedprice DECIMAL(15,2) NOT NULL,
            l_discount DECIMAL(15,2) NOT NULL, l_tax DECIMAL(15,2) NOT NULL,
            l_returnflag VARCHAR(1) NOT NULL, l_linestatus VARCHAR(1) NOT NULL,
            l_shipdate DATE NOT NULL, l_commitdate DATE NOT NULL,
            l_receiptdate DATE NOT NULL, l_shipinstruct VARCHAR(25) NOT NULL,
            l_shipmode VARCHAR(10) NOT NULL, l_comment VARCHAR(44) NOT NULL)""",
    ]


def column_type_names(table: str) -> list:
    """SQL type per column of a TPC-H table (schema order)."""
    from repro.sql.parser import parse_one

    ddl = dict(zip(TABLES, schema_statements()))[table]
    statement = parse_one(ddl)
    return [spec.type_name for spec in statement.columns]


def load(conn, data: dict, tables: list | None = None) -> None:
    """Create the schema and bulk-append generated data via the fast path."""
    ddl = dict(zip(TABLES, schema_statements()))
    for table in tables or TABLES:
        conn.execute(f"DROP TABLE IF EXISTS {table}")
        conn.execute(ddl[table])
        conn.append(table, data[table])
