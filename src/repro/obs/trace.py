"""Per-query execution traces (MonetDB's TRACE, reproduced).

A :class:`QueryTrace` is attached to an
:class:`~repro.mal.interpreter.ExecutionContext`; the interpreter then
records one :class:`InstructionProfile` per executed MAL instruction.
``EXPLAIN ANALYZE`` renders the trace as an annotated program listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "InstructionProfile",
    "QueryTrace",
    "cardinality",
    "instruction_inputs",
    "value_nbytes",
]


@dataclass
class InstructionProfile:
    """Profile of one executed instruction."""

    index: int
    var: int
    op: str
    detail: str  # the rendered instruction text
    rows_in: int
    rows_out: int
    tactic: str | None  # e.g. "hash_join", "order_index", "chunked:4"
    wall_ns: int


@dataclass
class QueryTrace:
    """All instruction profiles of one query execution."""

    sql: str | None = None
    records: list = field(default_factory=list)
    total_ns: int = 0
    result_rows: int = 0

    def record(
        self,
        index: int,
        instruction,
        rows_in: int,
        rows_out: int,
        tactic: str | None,
        wall_ns: int,
    ) -> None:
        self.records.append(
            InstructionProfile(
                index=index,
                var=instruction.var,
                op=instruction.op,
                detail=instruction.render(),
                rows_in=rows_in,
                rows_out=rows_out,
                tactic=tactic,
                wall_ns=wall_ns,
            )
        )

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict:
        """Aggregate numbers for dashboards and bench output."""
        by_op: dict = {}
        for rec in self.records:
            ns, count = by_op.get(rec.op, (0, 0))
            by_op[rec.op] = (ns + rec.wall_ns, count + 1)
        return {
            "instructions": len(self.records),
            "total_us": self.total_ns / 1_000.0,
            "result_rows": self.result_rows,
            "by_op": {
                op: {"us": ns / 1_000.0, "count": count}
                for op, (ns, count) in sorted(
                    by_op.items(), key=lambda kv: -kv[1][0]
                )
            },
        }

    def top_instructions(self, limit: int = 3) -> list:
        """The most expensive instructions, by wall time."""
        return sorted(self.records, key=lambda r: -r.wall_ns)[:limit]

    def render(self) -> str:
        """Annotated listing: per-instruction time, cardinalities, tactic."""
        header = (
            f"{'#':>3}  {'time_us':>10}  {'rows_in':>9}  {'rows_out':>9}  "
            f"{'tactic':<12}  instruction"
        )
        lines = [header, "-" * len(header)]
        for rec in self.records:
            lines.append(
                f"{rec.index:>3}  {rec.wall_ns / 1_000.0:>10.1f}  "
                f"{rec.rows_in:>9}  {rec.rows_out:>9}  "
                f"{(rec.tactic or '-'):<12}  {rec.detail}"
            )
        lines.append(
            f"total: {self.total_ns / 1_000.0:.1f} us over "
            f"{len(self.records)} instructions, {self.result_rows} result rows"
        )
        return "\n".join(lines)


# -- cardinality extraction ---------------------------------------------------------


def cardinality(value) -> int:
    """Row count carried by one interpreter value.

    Values are vectors (V), predicates (BoolVec), id arrays, join pairs
    ``(lidx, ridx)``, or groupby triples ``(gids, reps, ngroups)``.
    """
    if value is None:
        return 0
    # V / Column duck type: .data plus .is_scalar
    is_scalar = getattr(value, "is_scalar", None)
    if is_scalar is not None:
        if is_scalar:
            return 1
        return len(value.data)
    truth = getattr(value, "truth", None)  # BoolVec
    if truth is not None:
        return len(truth)
    if isinstance(value, np.ndarray):
        return int(value.shape[0]) if value.ndim else 1
    if isinstance(value, tuple):
        if len(value) == 3:  # groupby: (gids, reps, ngroups)
            return int(value[2])
        if len(value) == 2:  # join pair: (lidx, ridx)
            return len(value[0])
    n = getattr(value, "n", None)  # WindowContext
    if n is not None:
        return int(n)
    return 0


def value_nbytes(value) -> int:
    """Approximate bytes touched producing one interpreter value.

    Sums the backing array sizes of the shapes the interpreter passes
    around (vectors, predicates, id arrays, join pairs, groupby triples);
    string heap bytes are not counted — this prices array traffic, the
    quantity the span tracer reports as ``bytes``.
    """
    if value is None:
        return 0
    data = getattr(value, "data", None)  # V duck type
    if data is not None and hasattr(data, "nbytes"):
        return int(data.nbytes)
    truth = getattr(value, "truth", None)  # BoolVec
    if truth is not None:
        total = int(truth.nbytes)
        valid = getattr(value, "valid", None)
        if valid is not None:
            total += int(valid.nbytes)
        return total
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, tuple):
        return sum(
            int(part.nbytes)
            for part in value
            if isinstance(part, np.ndarray)
        )
    return 0


#: arg positions (or nested tuples of positions) holding variable references,
#: per op.  Used to reconstruct an instruction's input cardinality.
def instruction_inputs(instruction) -> tuple:
    """Variable indexes read by one instruction."""
    op = instruction.op
    args = instruction.args
    if op in ("bind", "dual"):
        return ()
    if op in ("map", "pred"):
        return tuple(args[1])
    if op in ("ids", "head", "pair_left", "pair_right", "gb_ids", "gb_reps"):
        return (args[0],)
    if op in ("take", "concat"):
        return (args[0], args[1])
    if op == "join":
        anchors = tuple(a for a in args[3] if a is not None)
        return tuple(args[0]) + tuple(args[1]) + anchors
    if op == "semijoin":
        return tuple(args[0]) + tuple(args[1])
    if op in ("groupby", "sort", "topn", "distinct", "result"):
        return tuple(args[0])
    if op == "agg":
        # (func, arg_var, gids_var, group_var, distinct, anchor_var, rtype,
        #  filter_var)
        keep = args[7] if len(args) > 7 else None
        return tuple(
            v
            for v in (args[1], args[2], args[3], args[5], keep)
            if v is not None
        )
    if op == "winctx":
        # (part_vars, order_vars, descending, nulls_first, anchor_var)
        anchor = (args[4],) if args[4] is not None else ()
        return tuple(args[0]) + tuple(args[1]) + anchor
    if op == "winfunc":
        # (func, arg_var, wctx_var, frame, rtype, anchor_var)
        return tuple(
            v for v in (args[1], args[2], args[5]) if v is not None
        )
    if op == "setop_ids":
        return tuple(args[2]) + tuple(args[3])
    return ()
