"""Engine-wide counters (queries, rows moved, wire bytes, txn outcomes).

One :class:`EngineStats` lives on each
:class:`~repro.core.database.Database` (as the counter store of its
:class:`~repro.obs.metrics.MetricsRegistry`); hot paths bump counters with
a single locked integer add — cheap enough to stay always-on.

Counter registration is dynamic: incrementing a name that was never
declared creates it on the fly (MonetDB's ``sys.querylog_*`` tables behave
the same way — new event kinds simply appear).  :meth:`EngineStats.snapshot`
stays stable-ordered: the predeclared counters come first, in declaration
order, followed by dynamically registered ones in sorted order.
"""

from __future__ import annotations

import threading

__all__ = ["EngineStats"]

#: Counters every snapshot reports, even when still zero.
_COUNTERS = (
    "queries",
    "statements",
    "rows_returned",
    "rows_appended",
    "rows_exported",
    "bytes_sent",
    "bytes_received",
    "txn_commits",
    "txn_aborts",
    "traced_queries",
    "query_errors",
    "slow_queries",
)


class EngineStats:
    """Thread-safe monotonically increasing engine counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in _COUNTERS}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A point-in-time copy of all counters, stable-ordered.

        Predeclared counters appear first in declaration order; counters
        registered dynamically follow in sorted name order.
        """
        with self._lock:
            extras = sorted(set(self._counters) - set(_COUNTERS))
            return {
                name: self._counters[name]
                for name in (*_COUNTERS, *extras)
            }

    def reset(self) -> None:
        with self._lock:
            for name in self._counters:
                self._counters[name] = 0
