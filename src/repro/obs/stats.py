"""Engine-wide counters (queries, rows moved, wire bytes, txn outcomes).

One :class:`EngineStats` lives on each
:class:`~repro.core.database.Database`; hot paths bump counters with a
single locked integer add — cheap enough to stay always-on.
"""

from __future__ import annotations

import threading

__all__ = ["EngineStats"]

#: Counters every snapshot reports, even when still zero.
_COUNTERS = (
    "queries",
    "statements",
    "rows_returned",
    "rows_appended",
    "rows_exported",
    "bytes_sent",
    "bytes_received",
    "txn_commits",
    "txn_aborts",
    "traced_queries",
)


class EngineStats:
    """Thread-safe monotonically increasing engine counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in _COUNTERS}

    def incr(self, name: str, amount: int = 1) -> None:
        if name not in self._counters:
            raise KeyError(f"unknown counter {name!r}")
        with self._lock:
            self._counters[name] += int(amount)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A point-in-time copy of all counters."""
        with self._lock:
            return dict(self._counters)

    def reset(self) -> None:
        with self._lock:
            for name in self._counters:
                self._counters[name] = 0
