"""Ring-buffer query log plus opt-in slow-query log.

Every statement executed through a :class:`~repro.core.connection.Connection`
appends one :class:`QueryLogEntry` — sql text, status, row count, wall time,
and the plan-phase breakdown (parse/bind/optimize/compile/execute) — into a
bounded deque, so the log can stay always-on without growing without bound.
``SELECT * FROM sys.queries`` scans this buffer.

When :attr:`~repro.mal.interpreter.ExecutionConfig.slow_query_us` is set,
entries at or above the threshold are copied into a second ring buffer
(``slow_entries``) and counted in the ``slow_queries`` engine counter, which
is the embedded-database analogue of MonetDB's ``querylog_enable(threshold)``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["QueryLogEntry", "QueryLog"]

#: Plan phases reported per query, in pipeline order (microseconds each).
PHASES = ("parse", "bind", "optimize", "compile", "execute")


@dataclass
class QueryLogEntry:
    """One executed statement, as seen by ``sys.queries``."""

    qid: int
    session: int
    sql: str
    status: str  # "ok" or "error"
    error: str | None
    rows: int
    started: float  # unix epoch seconds
    total_us: float
    phases_us: dict = field(default_factory=dict)
    #: "" (cold), "plan" (compiled plan reused) or "result" (result served)
    cache: str = ""
    #: set before the entry is published to the ring, so concurrent
    #: readers never observe a half-initialized entry
    is_slow: bool = False


class QueryLog:
    """Bounded, thread-safe log of recently executed statements."""

    def __init__(self, size: int = 256, slow_query_us: float | None = None):
        if size < 1:
            raise ValueError("query log size must be >= 1")
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=int(size))
        self._slow: deque = deque(maxlen=int(size))
        self._qid = itertools.count(1)
        self.slow_query_us = slow_query_us

    def record(
        self,
        *,
        session: int,
        sql: str,
        status: str,
        error: str | None,
        rows: int,
        started: float,
        total_us: float,
        phases_us: dict | None = None,
        cache: str = "",
    ) -> QueryLogEntry:
        slow = (
            self.slow_query_us is not None
            and float(total_us) >= self.slow_query_us
        )
        entry = QueryLogEntry(
            qid=0,  # assigned under the lock so ids are gap-free and ordered
            session=session,
            sql=sql,
            status=status,
            error=error,
            rows=int(rows),
            started=started,
            total_us=float(total_us),
            phases_us=dict(phases_us or {}),
            cache=cache,
            is_slow=slow,
        )
        with self._lock:
            # qid allocation inside the lock: entries in the ring are then
            # strictly qid-ordered even under concurrent sessions
            entry.qid = next(self._qid)
            self._entries.append(entry)
            if slow:
                self._slow.append(entry)
        return entry

    def entries(self) -> list:
        """Oldest-first snapshot of the ring buffer."""
        with self._lock:
            return list(self._entries)

    def slow_entries(self) -> list:
        with self._lock:
            return list(self._slow)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._slow.clear()


def now() -> float:
    """Wall-clock timestamp for ``QueryLogEntry.started``."""
    return time.time()
