"""Metrics registry: dynamic counters, gauges, and latency histograms.

The registry generalizes :class:`~repro.obs.stats.EngineStats` (which it
absorbs as its counter store) with two more instrument kinds:

* **gauges** — last-write-wins floats for point-in-time levels
  (open sessions, storage bytes);
* **histograms** — fixed-bucket distributions with exponential bucket
  bounds, the standard shape for latency tracking.  Observations are two
  locked integer adds; percentiles (p50/p95/p99) are derived from the
  bucket counts on demand, with linear interpolation inside the bucket.

The whole registry renders as a Prometheus text exposition
(:meth:`MetricsRegistry.prometheus_text`), which is what the server's
``METRICS`` wire command and :meth:`repro.core.database.Database.metrics_text`
return.
"""

from __future__ import annotations

import bisect
import re
import threading

from repro.obs.stats import EngineStats

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Histogram",
    "MetricsRegistry",
]

#: Exponential bucket upper bounds for latency histograms, in seconds:
#: 1us, 2us, 4us, ... ~2.1s (22 buckets), plus an implicit +Inf overflow.
DEFAULT_LATENCY_BOUNDS = tuple(1e-6 * (2.0**i) for i in range(22))


class Histogram:
    """A fixed-bucket histogram with cumulative-percentile estimation.

    ``bounds`` are the inclusive upper bounds of each bucket, strictly
    increasing; one extra overflow bucket catches everything above the
    last bound.  Not thread-safe on its own — the owning registry
    serializes observations under its lock.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds=DEFAULT_LATENCY_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow (+Inf)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, float(value))] += 1
        self.count += 1
        self.sum += float(value)

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0..1) from the bucket counts.

        Linear interpolation inside the chosen bucket; the overflow bucket
        reports the last finite bound (the histogram cannot see further).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.bounds[-1]

    def snapshot(self) -> dict:
        """Buckets (cumulative, Prometheus-style), count, sum, percentiles."""
        cumulative = 0
        buckets = []
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets.append((bound, cumulative))
        return {
            "buckets": buckets,
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    All instruments register dynamically on first touch; names are free-form
    (they are sanitized only when rendered for Prometheus).
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: monotonically increasing engine counters (shared with the
        #: database's legacy ``stats()`` face).
        self.counters = EngineStats()
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- counters (delegated) --------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters.incr(name, amount)

    def get_counter(self, name: str) -> int:
        return self.counters.get(name)

    # -- gauges ----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def get_gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def incr_gauge(self, name: str, delta: float = 1.0) -> float:
        """Atomically adjust a gauge by ``delta``; returns the new value.

        Level-style instruments (open sessions, queue depth) are updated
        concurrently from many threads/tasks — read-modify-write through
        ``set_gauge``/``get_gauge`` would race.
        """
        with self._lock:
            value = self._gauges.get(name, 0.0) + float(delta)
            self._gauges[name] = value
            return value

    # -- histograms ------------------------------------------------------------

    def observe(self, name: str, value: float, bounds=None) -> None:
        """Record one observation into a (created-on-demand) histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(bounds or DEFAULT_LATENCY_BOUNDS)
                self._histograms[name] = histogram
            histogram.observe(value)

    def histogram(self, name: str) -> dict | None:
        """Snapshot of one histogram, or None if never observed."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram is not None else None

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time copy of every instrument, stable-ordered."""
        counters = self.counters.snapshot()
        with self._lock:
            gauges = {name: self._gauges[name] for name in sorted(self._gauges)}
            histograms = {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        self.counters.reset()
        with self._lock:
            self._gauges.clear()
            self._histograms.clear()

    # -- Prometheus text exposition ---------------------------------------------

    def prometheus_text(self, prefix: str = "repro", extra_gauges=None) -> str:
        """Render every instrument in the Prometheus text format.

        ``extra_gauges`` lets the caller mix in gauges computed on demand
        (storage bytes, open sessions) without registering them.
        """
        snap = self.snapshot()
        lines: list = []
        seen: dict = {}
        for name, value in snap["counters"].items():
            base = _sanitize(name)
            if not base.endswith("_total"):
                base = f"{base}_total"
            metric = _unique_metric(seen, f"{prefix}_{base}", name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        gauges = dict(snap["gauges"])
        if extra_gauges:
            gauges.update(extra_gauges)
        for name in sorted(gauges):
            metric = _unique_metric(seen, f"{prefix}_{_sanitize(name)}", name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_number(gauges[name])}")
        for name, hist in snap["histograms"].items():
            metric = _unique_metric(seen, f"{prefix}_{_sanitize(name)}", name)
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in hist["buckets"]:
                lines.append(
                    f'{metric}_bucket{{le="{_escape_label(_number(bound))}"}}'
                    f" {cumulative}"
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
            lines.append(f"{metric}_sum {_number(hist['sum'])}")
            lines.append(f"{metric}_count {hist['count']}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    """Make a free-form instrument name a legal Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label(value) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unique_metric(seen: dict, metric: str, original: str) -> str:
    """Disambiguate sanitize collisions: two *different* raw instrument
    names must not share one rendered family (duplicate ``# TYPE`` lines
    make strict scrapers reject the whole exposition)."""
    holder = seen.get(metric)
    if holder is None:
        seen[metric] = original
        return metric
    if holder == original:
        return metric
    suffix = 2
    while f"{metric}_{suffix}" in seen:
        suffix += 1
    unique = f"{metric}_{suffix}"
    seen[unique] = original
    return unique


def _number(value: float) -> str:
    """Compact float rendering (integers lose the trailing ``.0``)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
