"""The ``sys`` monitoring schema: virtual tables over live engine state.

MonetDB exposes its own internals as relations — ``sys.storage`` prices
every column, ``sys.querylog_catalog`` records executed queries — so the
database is debuggable with the query language itself.  This module builds
the equivalent set for the embedded engine:

================  ============================================================
``sys.queries``       ring-buffer query log with plan-phase timings
``sys.slow_queries``  the slow-query subset (``slow_query_us`` threshold)
``sys.storage``       per-column memory accounting (data/heap/index bytes)
``sys.tables``        every relation in the catalog, real and virtual
``sys.sessions``      open connections with per-session counters
``sys.metrics``       the flattened metrics registry (counters/gauges/histos)
``sys.prepared``      live prepared statements across all open sessions
``sys.copy_history``  ring buffer of COPY bulk loads/exports with timings
``sys.rejects``       rejected records of the last BEST EFFORT COPY
``sys.trace_events``  retained spans from the hierarchical span tracer
``sys.active_queries``  in-flight statements with live progress estimates
``sys.exec_stats``    live morsel-executor counters (fragments, morsels,
                      queue depth, worker utilization)
================  ============================================================

:func:`register_sys_tables` is called once from ``Database.__init__``; the
generators close over the database and are re-evaluated on every scan (with
per-statement caching in the transaction layer).
"""

from __future__ import annotations

from repro.storage import types as T
from repro.storage.catalog import ColumnDef, TableSchema
from repro.storage.virtual import VirtualTable

__all__ = ["register_sys_tables", "storage_rows"]


def _schema(name: str, columns) -> TableSchema:
    return TableSchema(
        name, [ColumnDef(cname, ctype) for cname, ctype in columns], schema="sys"
    )

_QUERY_COLUMNS = (
    ("qid", T.BIGINT),
    ("session", T.BIGINT),
    ("sql", T.STRING),
    ("status", T.STRING),
    ("error", T.STRING),
    ("rows", T.BIGINT),
    ("started", T.DOUBLE),
    ("total_us", T.DOUBLE),
    ("parse_us", T.DOUBLE),
    ("bind_us", T.DOUBLE),
    ("optimize_us", T.DOUBLE),
    ("compile_us", T.DOUBLE),
    ("execute_us", T.DOUBLE),
    ("cache", T.STRING),
)

_PREPARED_COLUMNS = (
    ("session", T.BIGINT),
    ("name", T.STRING),
    ("sql", T.STRING),
    ("nparams", T.INTEGER),
    ("executions", T.BIGINT),
    ("created", T.DOUBLE),
)

_STORAGE_COLUMNS = (
    ("table_name", T.STRING),
    ("column_name", T.STRING),
    ("type_name", T.STRING),
    ("row_count", T.BIGINT),
    ("data_bytes", T.BIGINT),
    ("heap_bytes", T.BIGINT),
    ("index_bytes", T.BIGINT),
    ("total_bytes", T.BIGINT),
)

_TABLE_COLUMNS = (
    ("table_name", T.STRING),
    ("column_count", T.INTEGER),
    ("row_count", T.BIGINT),
    ("is_virtual", T.BOOLEAN),
)

_SESSION_COLUMNS = (
    ("session", T.BIGINT),
    ("client", T.STRING),
    ("started", T.DOUBLE),
    ("queries", T.BIGINT),
    ("rows_returned", T.BIGINT),
    ("in_txn", T.BOOLEAN),
    ("last_sql", T.STRING),
)

_METRIC_COLUMNS = (
    ("metric", T.STRING),
    ("kind", T.STRING),
    ("label", T.STRING),
    ("value", T.DOUBLE),
)

_COPY_HISTORY_COLUMNS = (
    ("id", T.BIGINT),
    ("started", T.DOUBLE),
    ("direction", T.STRING),
    ("table_name", T.STRING),
    ("source", T.STRING),
    ("rows", T.BIGINT),
    ("rejected", T.BIGINT),
    ("nbytes", T.BIGINT),
    ("total_us", T.DOUBLE),
    ("status", T.STRING),
    ("error", T.STRING),
)

_REJECT_COLUMNS = (
    ("record", T.BIGINT),
    ("column_name", T.STRING),
    ("error", T.STRING),
    ("input", T.STRING),
)

_TRACE_EVENT_COLUMNS = (
    ("trace_id", T.STRING),
    ("span_id", T.STRING),
    ("parent_id", T.STRING),
    ("session", T.BIGINT),
    ("kind", T.STRING),
    ("name", T.STRING),
    ("started", T.DOUBLE),
    ("duration_us", T.DOUBLE),
    ("rows_in", T.BIGINT),
    ("rows_out", T.BIGINT),
    ("bytes", T.BIGINT),
    ("rss_delta", T.BIGINT),
    ("tactic", T.STRING),
    ("status", T.STRING),
)

_EXEC_STAT_COLUMNS = (
    ("fragments_started", T.BIGINT),
    ("fragments_completed", T.BIGINT),
    ("morsels_dispatched", T.BIGINT),
    ("morsels_completed", T.BIGINT),
    ("rows_processed", T.BIGINT),
    ("queue_depth", T.BIGINT),
    ("busy_ms", T.DOUBLE),
    ("wall_ms", T.DOUBLE),
    ("last_workers", T.BIGINT),
    ("last_utilization", T.DOUBLE),
)

_ACTIVE_QUERY_COLUMNS = (
    ("session", T.BIGINT),
    ("trace_id", T.STRING),
    ("sql", T.STRING),
    ("phase", T.STRING),
    ("started", T.DOUBLE),
    ("elapsed_us", T.DOUBLE),
    ("rows_processed", T.BIGINT),
    ("rows_estimated", T.BIGINT),
    ("progress", T.DOUBLE),
)


def _query_rows(entries) -> list:
    rows = []
    for e in entries:
        us = e.phases_us
        rows.append((
            e.qid, e.session, e.sql, e.status, e.error, e.rows, e.started,
            e.total_us, us.get("parse", 0.0), us.get("bind", 0.0),
            us.get("optimize", 0.0), us.get("compile", 0.0),
            us.get("execute", 0.0), getattr(e, "cache", ""),
        ))
    return rows


def _prepared_rows(database) -> list:
    """One row per live prepared statement, across all open sessions."""
    rows = []
    for connection in database.sessions():
        lister = getattr(connection, "prepared_statements", None)
        if lister is None:
            continue
        for prepared in lister():
            rows.append((
                connection.session_id,
                prepared.name,
                prepared.sql,
                prepared.nparams,
                prepared.executions,
                prepared.created,
            ))
    return rows


def storage_rows(database) -> list:
    """One row per (table, column): the memory footprint breakdown.

    Prices the *committed* state: ``data_bytes`` is the packed storage
    array, ``heap_bytes`` the string heap behind variable-length columns
    (shared cost model with ``DataFrame.nbytes``), ``index_bytes`` every
    imprint/hash/order index over the column.
    """
    rows = []
    index_manager = database.index_manager
    for table in database.catalog.all_tables():
        version = table.current
        for colpos, (coldef, column) in enumerate(
            zip(table.schema.columns, version.columns)
        ):
            data_bytes = int(column.data.nbytes)
            heap_bytes = int(column.heap.nbytes) if column.heap is not None else 0
            index_bytes = int(index_manager.bytes_for(table.schema.name, colpos))
            rows.append((
                table.schema.name.lower(), coldef.name.lower(),
                coldef.type.name, version.nrows,
                data_bytes, heap_bytes, index_bytes,
                data_bytes + heap_bytes + index_bytes,
            ))
    return rows


def _table_rows(database) -> list:
    rows = [
        (t.schema.name.lower(), len(t.schema.columns), t.nrows, False)
        for t in database.catalog.all_tables()
    ]
    for virtual in database.catalog.list_virtual():
        rows.append((
            f"sys.{virtual.schema.name.lower()}",
            len(virtual.schema.columns),
            None,  # row count would mean materializing every sys table here
            True,
        ))
    return rows


def _session_rows(database) -> list:
    rows = []
    for connection in database.sessions():
        rows.append((
            connection.session_id,
            connection.client,
            connection.session_started,
            connection.session_queries,
            connection.session_rows,
            connection.in_transaction,
            connection.last_sql,
        ))
    return rows


def _metric_rows(database) -> list:
    snap = database.metrics.snapshot()
    rows = [
        (name, "counter", None, float(value))
        for name, value in snap["counters"].items()
    ]
    for name, value in snap["gauges"].items():
        rows.append((name, "gauge", None, float(value)))
    for name, hist in snap["histograms"].items():
        for label in ("count", "sum", "p50", "p95", "p99"):
            rows.append((name, "histogram", label, float(hist[label])))
    return rows


def _copy_history_rows(database) -> list:
    return [
        (
            e["id"], e["started"], e["direction"], e["table_name"],
            e["source"], e["rows"], e["rejected"], e["nbytes"],
            e["total_us"], e["status"], e["error"],
        )
        for e in database.copy_history
    ]


def _reject_rows(database) -> list:
    """Rejected records of the most recent BEST EFFORT COPY."""
    return [
        (r.record, r.column, r.error, r.line)
        for r in database.copy_rejects
    ]


def _trace_event_rows(database) -> list:
    """One row per retained span, oldest first."""
    tracer = database.span_tracer
    rows = []
    for span in tracer.events():
        attrs = span.attrs
        rows.append((
            span.trace_id, span.span_id, span.parent_id, span.session,
            span.kind, span.name, tracer.epoch_of(span.start_ns),
            span.duration_us,
            attrs.get("rows_in"),
            attrs.get("rows_out", attrs.get("rows")),
            attrs.get("bytes"), attrs.get("rss_delta"),
            attrs.get("tactic"), span.status,
        ))
    return rows


def _exec_stat_rows(database) -> list:
    """One row: the live morsel-executor counters (see repro.exec.stats)."""
    snap = database.exec_stats.snapshot()
    return [tuple(snap[name] for name, _ in _EXEC_STAT_COLUMNS)]


def _active_query_rows(database) -> list:
    """In-flight statements; progress = rows processed / optimizer estimate.

    The scanning statement itself shows up here when tracing is on — the
    live-progress analogue of seeing your own SELECT in ``pg_stat_activity``.
    """
    return [
        handle.active_row()
        for handle in database.span_tracer.active_statements()
    ]


def register_sys_tables(database) -> None:
    """Install the full ``sys`` monitoring schema on one database."""
    tables = (
        ("queries", _QUERY_COLUMNS,
         lambda: _query_rows(database.query_log.entries())),
        ("slow_queries", _QUERY_COLUMNS,
         lambda: _query_rows(database.query_log.slow_entries())),
        ("storage", _STORAGE_COLUMNS, lambda: storage_rows(database)),
        ("tables", _TABLE_COLUMNS, lambda: _table_rows(database)),
        ("sessions", _SESSION_COLUMNS, lambda: _session_rows(database)),
        ("metrics", _METRIC_COLUMNS, lambda: _metric_rows(database)),
        ("prepared", _PREPARED_COLUMNS, lambda: _prepared_rows(database)),
        ("copy_history", _COPY_HISTORY_COLUMNS,
         lambda: _copy_history_rows(database)),
        ("rejects", _REJECT_COLUMNS, lambda: _reject_rows(database)),
        ("trace_events", _TRACE_EVENT_COLUMNS,
         lambda: _trace_event_rows(database)),
        ("active_queries", _ACTIVE_QUERY_COLUMNS,
         lambda: _active_query_rows(database)),
        ("exec_stats", _EXEC_STAT_COLUMNS,
         lambda: _exec_stat_rows(database)),
    )
    for name, columns, generator in tables:
        database.catalog.register_virtual(
            VirtualTable(_schema(name, columns), generator)
        )
