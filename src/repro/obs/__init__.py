"""Engine observability: query traces and engine-wide counters.

Modeled on MonetDB's ``TRACE`` facility (and the stethoscope tooling built
on it): every executed MAL instruction can be profiled — operator, input
and output cardinalities, the tactical choice the interpreter made, and
wall time — and the engine keeps lightweight global counters (queries
served, rows appended/exported, bytes on the wire, transaction aborts)
that :meth:`repro.core.database.Database.stats` exposes.

Tracing is strictly opt-in: the interpreter's hot loop checks a single
``trace is None`` guard and does no per-row work when tracing is off.
"""

from repro.obs.stats import EngineStats
from repro.obs.trace import (
    InstructionProfile,
    QueryTrace,
    cardinality,
    instruction_inputs,
)

__all__ = [
    "EngineStats",
    "InstructionProfile",
    "QueryTrace",
    "cardinality",
    "instruction_inputs",
]
