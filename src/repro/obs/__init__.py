"""Engine observability: traces, counters, metrics, and the sys schema.

Modeled on MonetDB's ``TRACE`` facility (and the stethoscope tooling built
on it): every executed MAL instruction can be profiled — operator, input
and output cardinalities, the tactical choice the interpreter made, and
wall time — and the engine keeps lightweight global counters (queries
served, rows appended/exported, bytes on the wire, transaction aborts)
that :meth:`repro.core.database.Database.stats` exposes.

On top of the counters sit a :class:`MetricsRegistry` (gauges and latency
histograms, rendered as Prometheus text by ``Database.metrics_text()``), a
ring-buffer :class:`QueryLog`, and the ``sys.*`` virtual tables
(:mod:`repro.obs.systables`) that expose all of it through plain SQL.

Tracing is strictly opt-in: the interpreter's hot loop checks a single
``trace is None`` guard and does no per-row work when tracing is off.
"""

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram, MetricsRegistry
from repro.obs.querylog import QueryLog, QueryLogEntry
from repro.obs.spans import Span, SpanTracer, StatementSpans, render_tree
from repro.obs.stats import EngineStats
from repro.obs.trace import (
    InstructionProfile,
    QueryTrace,
    cardinality,
    instruction_inputs,
    value_nbytes,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "EngineStats",
    "Histogram",
    "InstructionProfile",
    "MetricsRegistry",
    "QueryLog",
    "QueryLogEntry",
    "QueryTrace",
    "Span",
    "SpanTracer",
    "StatementSpans",
    "cardinality",
    "instruction_inputs",
    "render_tree",
    "value_nbytes",
]
