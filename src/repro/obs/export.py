"""Trace exports: Chrome ``trace_event`` JSON and OTLP-shaped JSON.

Two portable serializations of the span buffer:

* :func:`to_chrome` emits the Chrome Trace Event format (``"X"`` complete
  events) — load the file in ``chrome://tracing`` or Perfetto to see the
  statement/phase/instruction/chunk hierarchy on a timeline, one track per
  session;
* :func:`to_otlp` emits the OpenTelemetry OTLP/JSON resource-spans shape
  so traces can be shipped to any OTLP-compatible collector without a
  client library.

``python -m repro.obs.export --sql "SELECT ..."`` runs a statement with
tracing forced on and writes either format — the quickest way from a slow
query to a flame graph.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["to_chrome", "to_otlp", "export_spans", "main"]


def to_chrome(spans: list) -> dict:
    """Span dicts (:meth:`~repro.obs.spans.Span.to_dict`) -> Chrome JSON."""
    events = []
    for span in spans:
        args = {
            k: v for k, v in span.get("attrs", {}).items() if v is not None
        }
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("status", "ok") != "ok":
            args["status"] = span["status"]
        events.append({
            "name": span["name"],
            "cat": span["kind"],
            "ph": "X",
            "ts": span["start_us"],
            "dur": span["duration_us"],
            "pid": 1,
            "tid": int(span.get("session") or 0),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _otlp_value(value):
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def to_otlp(spans: list, service_name: str = "repro") -> dict:
    """Span dicts -> OTLP/JSON ``resourceSpans`` payload."""
    otlp_spans = []
    for span in spans:
        start_ns = int(span["start_us"] * 1000.0)
        end_ns = start_ns + int(span["duration_us"] * 1000.0)
        attributes = [
            {"key": "span.kind", "value": {"stringValue": span["kind"]}},
            {"key": "session", "value": {"intValue": str(span.get("session") or 0)}},
        ]
        for key, value in span.get("attrs", {}).items():
            if value is None:
                continue
            attributes.append({"key": key, "value": _otlp_value(value)})
        otlp_spans.append({
            "traceId": span["trace_id"],
            "spanId": span["span_id"],
            "parentSpanId": span.get("parent_id") or "",
            "name": span["name"],
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": attributes,
            "status": {
                "code": 2 if span.get("status", "ok") != "ok" else 1
            },
        })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": service_name},
                }],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.obs.spans"},
                "spans": otlp_spans,
            }],
        }],
    }


def export_spans(spans: list, fmt: str = "chrome") -> dict:
    """Dispatch on format name (``chrome`` | ``otlp``)."""
    if fmt == "chrome":
        return to_chrome(spans)
    if fmt == "otlp":
        return to_otlp(spans)
    raise ValueError(f"unknown trace export format {fmt!r}")


def main(argv=None) -> int:
    """Run one statement with tracing forced on and export its trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Execute SQL with span tracing and export the trace.",
    )
    parser.add_argument("--sql", required=True, help="statement to trace")
    parser.add_argument(
        "--directory", default=None,
        help="database directory (default: fresh in-memory database)",
    )
    parser.add_argument(
        "--setup", default=None,
        help="semicolon-separated SQL run untraced before --sql",
    )
    parser.add_argument(
        "--format", choices=("chrome", "otlp"), default="chrome"
    )
    parser.add_argument(
        "--out", default=None, help="output path (default: stdout)"
    )
    args = parser.parse_args(argv)

    from repro.core.database import Database

    database = Database(args.directory, trace_spans=True)
    try:
        conn = database.connect()
        if args.setup:
            conn.execute(args.setup)
        conn.execute(args.sql)
        conn.close()
        payload = database.export_trace(fmt=args.format)
    finally:
        database.shutdown()
    text = json.dumps(payload, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            out.write(text)
    else:
        sys.stdout.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
