"""Hierarchical span tracing: session → statement → phase → instruction → chunk.

The flat :class:`~repro.obs.trace.QueryTrace` answers "which instruction was
slow"; it cannot answer where a statement's time went *between* layers —
parse vs. optimize vs. execute vs. serialize, server vs. client, worker
chunk vs. coordinator.  This module adds that hierarchy, modeled on
distributed-tracing spans (and MonetDB's TRACE events, which carry the same
per-operator accounting):

* a :class:`Span` is one timed region with a ``trace_id``/``span_id``/
  ``parent_id`` triple, a kind (``session``, ``statement``, ``phase``,
  ``instruction``, ``chunk``, ``wire``), and free-form attributes
  (cardinalities, bytes touched, RSS delta, tactic, cache status);
* a :class:`SpanTracer` owns a bounded ring buffer of finished spans plus
  the registry of *in-flight* statements (backing ``sys.active_queries``);
* a :class:`StatementSpans` handle is threaded through one statement's
  execution and collects that statement's spans.

**Sampling is head-based**: the keep/skip decision is made when the
statement span opens.  A sampled statement records deep (per-instruction,
per-chunk) spans; an unsampled one records only the statement/phase shell
and is retained at finish *only* if it turned out slow
(``span_slow_us``).  Tracing off (``trace_spans=False``) costs one
attribute load and one early-return per statement.

**Wire context propagation** uses a :mod:`contextvars` variable: the server
sets the client's ``traceparent`` (W3C-style ``00-<trace>-<span>-01``)
around statement execution, so server-side statement spans nest under the
client's root span and the two sides merge into one tree by trace id.
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanTracer",
    "StatementSpans",
    "SPAN_KINDS",
    "new_trace_id",
    "new_span_id",
    "make_traceparent",
    "parse_traceparent",
    "render_tree",
    "rss_bytes",
]

#: Every span kind, outermost to innermost.
SPAN_KINDS = ("session", "statement", "phase", "instruction", "chunk", "wire")

#: Wire trace context of the current thread/task: ``(trace_id, parent_id)``
#: or None.  Module-level so any tracer in the process can observe the
#: context the server installed for the duration of one statement.
_WIRE_CONTEXT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_wire_trace_context", default=None
)


def new_trace_id() -> str:
    """A 16-byte hex trace id (W3C trace-context sized)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """An 8-byte hex span id."""
    return os.urandom(8).hex()


def make_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C-style ``traceparent`` header value."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(text: str):
    """``(trace_id, span_id)`` from a traceparent, or None if malformed."""
    parts = text.strip().split("-")
    if len(parts) != 4:
        return None
    _, trace_id, span_id, _ = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    return trace_id, span_id


try:
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):
    _PAGE_BYTES = 4096


def rss_bytes() -> int:
    """Resident-set size of this process (bytes); 0 where unreadable."""
    try:
        with open("/proc/self/statm", "rb") as statm:
            return int(statm.read().split()[1]) * _PAGE_BYTES
    except (OSError, ValueError, IndexError):
        return 0


@dataclass
class Span:
    """One timed region of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    session: int
    start_ns: int  # perf_counter_ns domain; epoch via SpanTracer.epoch_of
    end_ns: int = 0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return max(0, self.end_ns - self.start_ns) / 1000.0

    def to_dict(self, epoch_of=None) -> dict:
        """Portable dict form (wire transfer, exports, virtual tables)."""
        start_s = (
            epoch_of(self.start_ns) if epoch_of is not None
            else self.start_ns * 1e-9
        )
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "session": self.session,
            "start_us": start_s * 1e6,
            "duration_us": self.duration_us,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class StatementSpans:
    """The span collector threaded through one statement's execution.

    Created by :meth:`SpanTracer.statement`; the connection opens phase
    spans, the interpreter records instruction spans (deep mode only), and
    worker threads append chunk spans through the thread-safe
    :meth:`record`.  :meth:`finish` hands everything back to the tracer,
    which applies the retention policy.
    """

    __slots__ = (
        "tracer", "trace_id", "session", "sql", "deep", "retain",
        "root", "spans", "_stack", "_lock", "rows_processed",
        "rows_estimate", "started_epoch", "_rss_start", "_finished",
    )

    def __init__(self, tracer, trace_id, parent_id, session, sql,
                 parse_ns=0, deep=True, retain=None):
        now = time.perf_counter_ns()
        self.tracer = tracer
        self.trace_id = trace_id
        self.session = session
        self.sql = sql
        self.deep = deep
        #: True = always keep, False = never keep, None = keep if deep/slow
        self.retain = retain
        self._lock = threading.Lock()
        self.rows_processed = 0
        self.rows_estimate: int | None = None
        self._finished = False
        start = now - max(0, int(parse_ns))
        self.started_epoch = tracer.epoch_of(start)
        self.root = Span(
            trace_id, new_span_id(), parent_id, "statement", "statement",
            session, start, attrs={"sql": sql},
        )
        self.spans = [self.root]
        self._stack = [self.root]
        if parse_ns:
            self.spans.append(Span(
                trace_id, new_span_id(), self.root.span_id, "parse", "phase",
                session, start, end_ns=now,
            ))
        self._rss_start = rss_bytes()

    # -- span construction (statement thread) ---------------------------------

    def begin(self, name: str, kind: str = "phase", **attrs) -> Span:
        """Open a child span under the innermost open span."""
        span = Span(
            self.trace_id, new_span_id(), self._stack[-1].span_id, name,
            kind, self.session, time.perf_counter_ns(), attrs=attrs,
        )
        with self._lock:
            self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs) -> None:
        span.end_ns = time.perf_counter_ns()
        if attrs:
            span.attrs.update(attrs)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    class _PhaseCtx:
        __slots__ = ("handle", "span")

        def __init__(self, handle, span):
            self.handle = handle
            self.span = span

        def __enter__(self):
            return self.span

        def __exit__(self, exc_type, exc, tb):
            self.handle.end(
                self.span,
                **({"status": "error"} if exc_type is not None else {}),
            )

    def phase(self, name: str, **attrs):
        """Context manager recording one phase span."""
        return self._PhaseCtx(self, self.begin(name, "phase", **attrs))

    def record(self, name: str, kind: str, start_ns: int, end_ns: int,
               parent: Span | None = None, **attrs) -> Span:
        """Append a pre-timed span; safe to call from worker threads."""
        span = Span(
            self.trace_id, new_span_id(),
            (parent or self.root).span_id, name, kind, self.session,
            start_ns, end_ns=end_ns, attrs=attrs,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def current(self) -> Span:
        """The innermost open span (chunk-span parent for worker fan-out)."""
        return self._stack[-1]

    # -- live progress (sys.active_queries) -----------------------------------

    def add_rows(self, n: int) -> None:
        """Count rows processed; int += is atomic enough for a progress bar."""
        self.rows_processed += n

    def active_row(self) -> tuple:
        """One ``sys.active_queries`` row for this in-flight statement."""
        with self._lock:
            stack = list(self._stack)
        phase = ""
        for span in reversed(stack):
            if span.kind == "phase":
                phase = span.name
                break
        elapsed_us = (time.perf_counter_ns() - self.root.start_ns) / 1000.0
        estimate = self.rows_estimate
        processed = self.rows_processed
        progress = None
        if estimate is not None and estimate > 0:
            progress = min(1.0, processed / estimate)
        return (
            self.session, self.trace_id, self.sql, phase,
            self.started_epoch, elapsed_us, processed,
            estimate, progress,
        )

    # -- completion -----------------------------------------------------------

    def annotate(self, **attrs) -> None:
        self.root.attrs.update(attrs)

    def finish(self, status: str = "ok", error: str | None = None,
               rows: int | None = None, **attrs) -> None:
        """Close the statement span and hand spans to the tracer."""
        if self._finished:
            return
        self._finished = True
        now = time.perf_counter_ns()
        # close any spans an exception left open, innermost first
        while len(self._stack) > 1:
            dangling = self._stack.pop()
            if dangling.end_ns == 0:
                dangling.end_ns = now
                dangling.status = "error" if status == "error" else dangling.status
        self.root.end_ns = now
        self.root.status = status
        if error is not None:
            self.root.attrs["error"] = error
        if rows is not None:
            self.root.attrs["rows"] = int(rows)
        if attrs:
            self.root.attrs.update(attrs)
        delta = rss_bytes() - self._rss_start
        self.root.attrs["rss_delta"] = delta
        self.tracer._finish_statement(self)


class SpanTracer:
    """Process-wide span collection: ring buffer, sampling, live registry."""

    def __init__(self, enabled: bool = False, sample_rate: float = 1.0,
                 slow_us: float | None = None, buffer_size: int = 4096,
                 metrics=None):
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self.slow_us = slow_us
        self.metrics = metrics
        self._lock = threading.Lock()
        self._buffer: deque = deque(maxlen=max(1, int(buffer_size)))
        self._active: dict = {}
        # anchor pair: converts perf_counter_ns() spans to epoch time
        self._epoch_anchor = time.time() - time.perf_counter_ns() * 1e-9

    # -- time domain ----------------------------------------------------------

    def epoch_of(self, perf_ns: int) -> float:
        """Unix-epoch seconds for a ``perf_counter_ns`` stamp."""
        return self._epoch_anchor + perf_ns * 1e-9

    # -- wire context ---------------------------------------------------------

    @staticmethod
    def set_wire_context(trace_id: str, parent_id: str):
        """Install a client trace context for this thread; returns a token."""
        return _WIRE_CONTEXT.set((trace_id, parent_id))

    @staticmethod
    def reset_wire_context(token) -> None:
        _WIRE_CONTEXT.reset(token)

    @staticmethod
    def wire_context():
        return _WIRE_CONTEXT.get()

    # -- statement lifecycle --------------------------------------------------

    def statement(self, *, session: int, sql: str, parse_ns: int = 0,
                  trace_id: str | None = None,
                  parent_id: str | None = None,
                  force: bool = False) -> StatementSpans | None:
        """Open a statement span, or None when tracing does not apply.

        ``force`` (EXPLAIN ANALYZE, trace exports) always records deeply;
        the spans are retained in the ring only if tracing is enabled.  A
        wire context (client-propagated traceparent) also forces deep
        recording *and* retention — the client asked for this trace.
        """
        context = _WIRE_CONTEXT.get()
        if context is None and not self.enabled and not force:
            return None
        if context is not None:
            wire_trace, wire_parent = context
            handle = StatementSpans(
                self, wire_trace, wire_parent, session, sql, parse_ns,
                deep=True, retain=True,
            )
        elif force:
            handle = StatementSpans(
                self, trace_id or new_trace_id(), parent_id, session, sql,
                parse_ns, deep=True,
                retain=True if self.enabled else False,
            )
        else:
            deep = (
                self.sample_rate >= 1.0
                or random.random() < self.sample_rate
            )
            handle = StatementSpans(
                self, trace_id or new_trace_id(), parent_id, session, sql,
                parse_ns, deep=deep, retain=None,
            )
        with self._lock:
            self._active[handle.root.span_id] = handle
        return handle

    def _finish_statement(self, handle: StatementSpans) -> None:
        with self._lock:
            self._active.pop(handle.root.span_id, None)
        keep = handle.retain
        if keep is None:
            slow = (
                self.slow_us is not None
                and handle.root.duration_us >= self.slow_us
            )
            keep = handle.deep or slow
            if slow:
                handle.root.attrs["slow"] = True
        if not keep:
            return
        with self._lock:
            self._buffer.extend(handle.spans)
        if self.metrics is not None:
            self.metrics.incr("spans_recorded", len(handle.spans))
            self.metrics.incr("statements_traced")

    # -- raw span recording (server wire spans, session spans) ---------------

    def record_span(self, span: Span) -> None:
        """Append one already-finished span, bypassing retention policy."""
        with self._lock:
            self._buffer.append(span)
        if self.metrics is not None:
            self.metrics.incr("spans_recorded")

    # -- reads ----------------------------------------------------------------

    def events(self) -> list:
        """Oldest-first snapshot of retained spans."""
        with self._lock:
            return list(self._buffer)

    def spans_for(self, trace_id: str) -> list:
        with self._lock:
            return [s for s in self._buffer if s.trace_id == trace_id]

    def export_dicts(self, trace_id: str | None = None) -> list:
        spans = self.events() if trace_id is None else self.spans_for(trace_id)
        return [span.to_dict(self.epoch_of) for span in spans]

    def active_statements(self) -> list:
        with self._lock:
            return list(self._active.values())

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()
            self._active.clear()


# -- span-tree rendering (EXPLAIN ANALYZE, RemoteConnection.trace_query) -----


def render_tree(spans: list) -> str:
    """Render span dicts (see :meth:`Span.to_dict`) as an indented tree.

    Every line carries total and self time (``time_us`` / ``self_us``);
    instruction and chunk spans add cardinalities, tactic, and detail.
    Orphans (parent not in the set, e.g. a server tree whose parent lives
    client-side) render as additional roots.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def self_us(span):
        return span["duration_us"] - sum(
            c["duration_us"] for c in children.get(span["span_id"], ())
        )

    lines: list = []

    def emit(span, prefix, tail, top=False):
        attrs = span.get("attrs", {})
        branch = "" if top else ("└─ " if tail else "├─ ")
        label = span["name"]
        parts = [
            f"time_us={span['duration_us']:.1f}",
            f"self_us={max(0.0, self_us(span)):.1f}",
        ]
        if "rows_in" in attrs or "rows_out" in attrs:
            parts.append(
                f"rows={attrs.get('rows_in', 0)}->{attrs.get('rows_out', 0)}"
            )
        elif "rows" in attrs:
            parts.append(f"rows={attrs['rows']}")
        if attrs.get("tactic"):
            parts.append(f"tactic={attrs['tactic']}")
        if attrs.get("cache"):
            parts.append(f"cache={attrs['cache']}")
        if attrs.get("bytes"):
            parts.append(f"bytes={attrs['bytes']}")
        if span.get("status", "ok") != "ok":
            parts.append(f"status={span['status']}")
        detail = attrs.get("detail") or (
            attrs.get("sql") if span["kind"] in ("statement", "wire") else None
        )
        text = f"{prefix}{branch}{label:<12} {'  '.join(parts)}"
        if detail:
            text += f"  {detail}"
        lines.append(text)
        kids = children.get(span["span_id"], [])
        child_prefix = prefix if top else prefix + ("   " if tail else "│  ")
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(roots):
        emit(root, "", i == len(roots) - 1, top=True)
    return "\n".join(lines)
