"""Binary columnar result codec: typed column blocks on the wire.

The text protocol pays the paper's serialization tax twice: the server
formats every field through Python string code, and the client parses it
all back and *pivots* rows into arrays.  This codec ships results the way
the engine stores them — packed NumPy arrays — so a result batch is a
handful of buffer writes and the client reconstructs native columnar
arrays with zero per-row work ("Mainlining Databases": expose typed
columnar data end-to-end).

``B`` frame payload layout (all integers little-endian)::

    u8   version          (currently 1)
    u8   reserved         (0)
    u32  nrows            rows in this batch
    u16  ncols
    ncols x column block:
        u8   type code    (see TYPE_CODES)
        u8   scale        DECIMAL fractional digits, else 0
        u32  validity_len bytes of NULL bitmap that follow (0 = no NULLs)
        ...  validity     packed bits, LSB-first, 1 = value present
        u32  data_len
        ...  data         fixed-width: the packed storage array verbatim
                          (storage domain: epoch days for DATE, scaled
                          int64 for DECIMAL, sentinel NULLs in-domain);
                          strings: uint32 cumulative *end* offsets into
                          the aux blob, one per row
        u32  aux_len
        ...  aux          strings: concatenated UTF-8 bytes; else empty

Fixed-width blocks are emitted straight from the engine's column buffers
(``ndarray.tobytes``); NULLs ride along as in-domain sentinels *plus* the
explicit validity bitmap so clients need no sentinel knowledge.  String
blocks are offsets + one blob — still no per-row formatting, just one
encode per value and two buffer writes.

A result is streamed as one ``B`` frame per :data:`BINARY_BATCH_ROWS`
rows; a zero-row result still ships one (empty) frame so clients learn
the column dtypes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ProtocolError
from repro.storage import types as T

__all__ = [
    "BINARY_VERSION",
    "BINARY_BATCH_ROWS",
    "TYPE_CODES",
    "encode_block",
    "decode_block",
    "DecodedColumn",
    "concat_columns",
]

BINARY_VERSION = 1

#: Rows per ``B`` frame; bounds frame size (64k rows x 8 wide cols x 8 B
#: = 4 MiB) while keeping the per-frame overhead negligible.
BINARY_BATCH_ROWS = 1 << 16

_BLOCK_HEADER = struct.Struct("<BBIH")
_COL_HEADER = struct.Struct("<BB")
_U32 = struct.Struct("<I")

# type code -> (SQLType factory, numpy storage dtype)
CODE_BOOLEAN = 1
CODE_TINYINT = 2
CODE_SMALLINT = 3
CODE_INTEGER = 4
CODE_BIGINT = 5
CODE_REAL = 6
CODE_DOUBLE = 7
CODE_DECIMAL = 8
CODE_DATE = 9
CODE_TIME = 10
CODE_TIMESTAMP = 11
CODE_STRING = 12

TYPE_CODES = {
    "BOOLEAN": CODE_BOOLEAN,
    "TINYINT": CODE_TINYINT,
    "SMALLINT": CODE_SMALLINT,
    "INTEGER": CODE_INTEGER,
    "BIGINT": CODE_BIGINT,
    "HUGEINT": CODE_BIGINT,  # int64-backed (documented simplification)
    "REAL": CODE_REAL,
    "DOUBLE": CODE_DOUBLE,
    "DATE": CODE_DATE,
    "TIME": CODE_TIME,
    "TIMESTAMP": CODE_TIMESTAMP,
}

_FIXED_TYPES = {
    CODE_BOOLEAN: T.BOOLEAN,
    CODE_TINYINT: T.TINYINT,
    CODE_SMALLINT: T.SMALLINT,
    CODE_INTEGER: T.INTEGER,
    CODE_BIGINT: T.BIGINT,
    CODE_REAL: T.REAL,
    CODE_DOUBLE: T.DOUBLE,
    CODE_DATE: T.DATE,
    CODE_TIME: T.TIME,
    CODE_TIMESTAMP: T.TIMESTAMP,
}


def _type_code(ctype) -> int:
    if ctype.is_variable:
        return CODE_STRING
    if ctype.category == T.TypeCategory.DECIMAL:
        return CODE_DECIMAL
    code = TYPE_CODES.get(ctype.name.split("(")[0].upper())
    if code is None:
        raise ProtocolError(f"no binary encoding for type {ctype.name}")
    return code


def _validity_bytes(ctype, data: np.ndarray) -> bytes:
    """Packed validity bitmap, or b\"\" when the batch has no NULLs."""
    isnull = ctype.is_null_array(data)
    if not isnull.any():
        return b""
    return np.packbits(~isnull, bitorder="little").tobytes()


def encode_block(columns, start: int, stop: int) -> bytes:
    """Encode rows [start, stop) of engine ``Column`` objects as one block."""
    nrows = stop - start
    parts = [_BLOCK_HEADER.pack(BINARY_VERSION, 0, nrows, len(columns))]
    for column in columns:
        ctype = column.type
        code = _type_code(ctype)
        data = column.data[start:stop]
        validity = _validity_bytes(ctype, data)
        if code == CODE_STRING:
            values = column.heap.get_many(data)
            encoded = [
                b"" if v is None else str(v).encode("utf-8") for v in values
            ]
            blob = b"".join(encoded)
            ends = np.cumsum(
                np.fromiter(
                    (len(b) for b in encoded), dtype=np.uint32, count=nrows
                ),
                dtype=np.uint32,
            )
            payload = ends.tobytes()
            aux = blob
        else:
            if not data.flags.c_contiguous:
                data = np.ascontiguousarray(data)
            payload = data.tobytes()
            aux = b""
        parts.append(_COL_HEADER.pack(code, ctype.scale))
        parts.append(_U32.pack(len(validity)))
        parts.append(validity)
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
        parts.append(_U32.pack(len(aux)))
        parts.append(aux)
    return b"".join(parts)


class DecodedColumn:
    """One decoded column block: native array access plus Python values.

    ``storage`` is the raw storage-domain array (or uint32 end offsets
    for strings); ``valid`` is a boolean mask (None = all valid).  The
    conversions are vectorized where NumPy allows and lazy everywhere —
    decode itself is a few ``frombuffer`` calls.
    """

    __slots__ = ("code", "scale", "storage", "valid", "_blob", "_type")

    def __init__(self, code, scale, storage, valid, blob):
        self.code = code
        self.scale = scale
        self.storage = storage
        self.valid = valid
        self._blob = blob
        self._type = _FIXED_TYPES.get(code)
        if code == CODE_DECIMAL:
            self._type = T.decimal(18, scale)
        elif code == CODE_STRING:
            self._type = T.STRING

    @property
    def nrows(self) -> int:
        return len(self.storage)

    def _strings(self) -> list:
        ends = self.storage
        blob = self._blob
        starts = np.empty_like(ends)
        starts[0:1] = 0
        starts[1:] = ends[:-1]
        valid = self.valid
        if valid is None:
            return [
                blob[s:e].decode("utf-8")
                for s, e in zip(starts.tolist(), ends.tolist())
            ]
        return [
            blob[s:e].decode("utf-8") if ok else None
            for s, e, ok in zip(starts.tolist(), ends.tolist(), valid.tolist())
        ]

    def to_array(self):
        """Native columnar array, matching ``RemoteResult.to_columns``.

        Integers decode to int64 (float64 + NaN when NULLs are present),
        floats/decimals to float64 with NaN NULLs, dates to
        ``datetime64[D]`` with NaT; everything else becomes an object
        array of Python values.
        """
        code = self.code
        if code == CODE_STRING:
            return np.asarray(self._strings(), dtype=object)
        data = self.storage
        valid = self.valid
        if code in (CODE_TINYINT, CODE_SMALLINT, CODE_INTEGER, CODE_BIGINT):
            if valid is None:
                return data.astype(np.int64)
            out = data.astype(np.float64)
            out[~valid] = np.nan
            return out
        if code in (CODE_REAL, CODE_DOUBLE):
            out = data.astype(np.float64)
            if valid is not None:
                out[~valid] = np.nan
            return out
        if code == CODE_DECIMAL:
            out = data.astype(np.float64) / 10**self.scale
            if valid is not None:
                out[~valid] = np.nan
            return out
        if code == CODE_DATE:
            out = data.astype("datetime64[D]")
            if valid is not None:
                out[~valid] = np.datetime64("NaT")
            return out
        # BOOLEAN / TIME / TIMESTAMP: object arrays of Python values
        return np.asarray(self.to_pylist(), dtype=object)

    def to_pylist(self) -> list:
        """Python values (None for NULL) — the text path's typed fields."""
        if self.code == CODE_STRING:
            return self._strings()
        ctype = self._type
        valid = self.valid
        values = self.storage.tolist()
        if self.code in (
            CODE_TINYINT,
            CODE_SMALLINT,
            CODE_INTEGER,
            CODE_BIGINT,
            CODE_REAL,
            CODE_DOUBLE,
        ):
            # tolist() already yields int/float; only NULLs need patching
            if valid is None and self.code not in (CODE_REAL, CODE_DOUBLE):
                return values
            from_storage = ctype.from_storage
            if valid is None:  # floats: NaN payloads are NULL sentinels
                return [from_storage(v) for v in self.storage]
            return [
                v if ok else None for v, ok in zip(values, valid.tolist())
            ]
        from_storage = ctype.from_storage
        if valid is None:
            return [from_storage(v) for v in self.storage]
        return [
            from_storage(v) if ok else None
            for v, ok in zip(self.storage, valid.tolist())
        ]


def decode_block(payload: bytes) -> list:
    """Decode one ``B`` payload into a list of :class:`DecodedColumn`."""
    if len(payload) < _BLOCK_HEADER.size:
        raise ProtocolError("binary block: truncated header")
    version, _flags, nrows, ncols = _BLOCK_HEADER.unpack_from(payload, 0)
    if version != BINARY_VERSION:
        raise ProtocolError(f"binary block: unknown version {version}")
    pos = _BLOCK_HEADER.size
    view = memoryview(payload)
    columns = []
    for _ in range(ncols):
        if pos + _COL_HEADER.size > len(payload):
            raise ProtocolError("binary block: truncated column header")
        code, scale = _COL_HEADER.unpack_from(payload, pos)
        pos += _COL_HEADER.size
        validity, pos = _take_section(view, payload, pos)
        data, pos = _take_section(view, payload, pos)
        aux, pos = _take_section(view, payload, pos)
        if code == CODE_STRING:
            storage = np.frombuffer(data, dtype=np.uint32)
        else:
            ctype = _FIXED_TYPES.get(code)
            if ctype is None and code != CODE_DECIMAL:
                raise ProtocolError(f"binary block: unknown type code {code}")
            dtype = np.int64 if code == CODE_DECIMAL else ctype.dtype
            storage = np.frombuffer(data, dtype=dtype)
        if len(storage) != nrows:
            raise ProtocolError(
                f"binary block: column has {len(storage)} values, "
                f"expected {nrows}"
            )
        valid = None
        if len(validity):
            bits = np.unpackbits(
                np.frombuffer(validity, dtype=np.uint8), bitorder="little"
            )
            if len(bits) < nrows:
                raise ProtocolError("binary block: short validity bitmap")
            valid = bits[:nrows].astype(bool)
        columns.append(
            DecodedColumn(code, scale, storage, valid, bytes(aux))
        )
    return columns


def _take_section(view, payload: bytes, pos: int):
    if pos + 4 > len(payload):
        raise ProtocolError("binary block: truncated section length")
    (length,) = _U32.unpack_from(payload, pos)
    pos += 4
    if pos + length > len(payload):
        raise ProtocolError("binary block: truncated section body")
    return view[pos : pos + length], pos + length


def concat_columns(blocks: list) -> list:
    """Merge per-block :class:`DecodedColumn` lists into whole columns.

    ``blocks`` is a non-empty list of ``decode_block`` results (one per
    ``B`` frame, identical schemas).  Single-block results — the common
    case — are returned as-is, zero-copy.
    """
    if len(blocks) == 1:
        return blocks[0]
    merged = []
    for parts in zip(*blocks):
        first = parts[0]
        if first.code == CODE_STRING:
            # rebase each block's end-offsets onto the concatenated blob
            blobs = []
            offset = 0
            ends = []
            for part in parts:
                ends.append(part.storage.astype(np.uint32) + offset)
                blobs.append(part._blob)
                offset += len(part._blob)
            storage = np.concatenate(ends)
            blob = b"".join(blobs)
        else:
            storage = np.concatenate([p.storage for p in parts])
            blob = b""
        if any(p.valid is not None for p in parts):
            valid = np.concatenate(
                [
                    p.valid
                    if p.valid is not None
                    else np.ones(p.nrows, dtype=bool)
                    for p in parts
                ]
            )
        else:
            valid = None
        merged.append(
            DecodedColumn(first.code, first.scale, storage, valid, blob)
        )
    return merged
