"""Wire protocol: framed messages with text-serialized rows.

Message frame: 1 type byte + 4-byte little-endian payload length + payload.

====  ====================  =========================================
type  direction             payload
====  ====================  =========================================
``Q``  client -> server     SQL text (UTF-8)
``M``  both directions      client: request engine metrics; server:
                            Prometheus text exposition of the metrics
                            registry (``Database.metrics_text()``)
``A``  client -> server     bulk append: table name (append uses SQL
                            INSERTs by default; ``A`` exists only for
                            the "what if servers had a bulk path"
                            ablation)
``P``  client -> server     prepare: ``name NUL sql`` — parses the SQL
                            and registers it under ``name``
``E``  client -> server     execute prepared: ``name NUL fields`` where
                            ``fields`` are tab-separated parameter
                            values in row text form (``\\N`` = NULL);
                            response is the normal query sequence
``D``  client -> server     deallocate: prepared statement name
``D``  server -> client     row description: ``name:type`` per column
``R``  server -> client     one *batch* of rows, text-serialized
``C``  server -> client     command complete (+row count)
``E``  server -> client     error message
``Z``  server -> client     ready for query
``G``  server -> client     copy-in ready: the query was a
                            ``COPY ... FROM STDIN``; the client now
                            streams ``d`` frames and finishes with
                            ``c`` (or aborts with ``f``)
``H``  server -> client     copy-out start: ``d`` frames with the CSV
                            payload of a ``COPY ... TO STDOUT`` follow,
                            then the normal result sequence
``d``  both directions      one chunk of COPY payload bytes
``c``  client -> server     copy-in done (all data sent)
``f``  client -> server     copy-in abort (+reason)
``T``  client -> server     set trace context: a W3C-style
                            ``traceparent`` (``00-<trace>-<span>-01``);
                            subsequent statements record server-side
                            spans nested under the client's span.  An
                            empty payload clears the context.  Ack is
                            ``C`` + ``Z``.
``t``  client -> server     fetch spans: payload is a trace id; the
                            server answers with a ``t`` frame holding a
                            JSON array of span dicts for that trace,
                            then ``Z``
``t``  server -> client     span dicts (JSON) for a requested trace id
``N``  client -> server     capability negotiation: space-separated
                            ``key=value`` tokens (currently
                            ``binary=1``); servers answer with an ``N``
                            frame listing the capabilities they accept,
                            then ``Z``.  Servers predating this frame
                            answer ``E`` + ``Z``, which clients treat
                            as "no optional capabilities" — old and new
                            peers interoperate in text mode
``N``  server -> client     accepted capabilities (same token format)
``B``  server -> client     one batch of result rows in the *binary
                            columnar* format (length-prefixed typed
                            column blocks with NULL validity bitmaps,
                            see :mod:`repro.server.binary`); replaces
                            ``R`` frames when ``binary=1`` was
                            negotiated
====  ====================  =========================================

Rows are serialized like PostgreSQL's COPY text format: fields separated
by tabs, rows by newlines, NULL as ``\\N``, with backslash escaping.  A
:class:`ProtocolConfig` sets how many rows share one ``R`` message (1 =
pg/mysql behavior; MonetDB's block protocol ships batches) and how many
rows a generated INSERT statement carries during ``dbWriteTable``.
"""

from __future__ import annotations

import datetime as _dt
import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = [
    "ProtocolConfig",
    "PROTOCOLS",
    "HEADER_BYTES",
    "COPY_CHUNK_BYTES",
    "MAX_PAYLOAD",
    "read_message",
    "read_message_async",
    "write_message",
    "encode_rows",
    "decode_rows",
    "format_field",
    "parse_field",
    "sql_literal",
]

_HEADER = struct.Struct("<cI")

#: Frame overhead per message (type byte + length word) — used for
#: bytes-on-the-wire accounting in the server stats.
HEADER_BYTES = _HEADER.size

#: Upper bound on a single message payload (guards corrupt frames).
MAX_PAYLOAD = 1 << 28

#: Bytes of COPY payload shipped per ``d`` frame.
COPY_CHUNK_BYTES = 256 << 10


@dataclass(frozen=True)
class ProtocolConfig:
    """Behavioral knobs distinguishing the emulated server systems."""

    name: str
    rows_per_message: int = 1  # result rows batched into one 'R' frame
    rows_per_insert: int = 1  # rows per generated INSERT during ingest
    length_prefixed_fields: bool = False  # mysql-style per-field prefixes


PROTOCOLS = {
    # PostgreSQL-like: row-per-message, single-row INSERTs
    "pg": ProtocolConfig("pg", rows_per_message=1, rows_per_insert=1),
    # MariaDB/MySQL-like: row-per-message with per-field length prefixes
    "mysql": ProtocolConfig(
        "mysql", rows_per_message=1, rows_per_insert=1, length_prefixed_fields=True
    ),
    # MonetDB server: block-based result transfer, still per-row INSERTs
    "monetdb": ProtocolConfig("monetdb", rows_per_message=100, rows_per_insert=1),
}


def write_message(stream, mtype: bytes, payload: bytes) -> None:
    """Frame and write one message (no flush)."""
    stream.write(_HEADER.pack(mtype, len(payload)))
    stream.write(payload)


def _read_exact(stream, n: int, *, eof_ok: bool = False) -> bytes:
    """Read exactly ``n`` bytes, looping over short reads.

    Raw sockets (and file wrappers over timed-out sockets) may return
    fewer bytes than requested without being at EOF; a single ``read``
    call would then misparse the frame.  A torn read — EOF in the middle
    of a frame — raises :class:`ProtocolError` instead of returning a
    short buffer for ``struct`` to crash on.  ``eof_ok`` permits a clean
    EOF at a frame boundary (empty return).
    """
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return b""
            raise ProtocolError(
                f"torn frame: connection closed with {remaining} of "
                f"{n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def read_message(stream, max_payload: int = MAX_PAYLOAD):
    """Read one framed message; returns (type, payload) or (None, b"") on EOF.

    ``max_payload`` caps the advertised payload length *before* any
    allocation happens; a frame over the cap raises
    :class:`ProtocolError` rather than blindly allocating an
    attacker-controlled buffer.  Short/torn reads also surface as
    :class:`ProtocolError` (never hangs on a partial ``struct`` or
    returns garbage).
    """
    header = _read_exact(stream, _HEADER.size, eof_ok=True)
    if not header:
        return None, b""
    mtype, length = _HEADER.unpack(header)
    if length > max_payload:
        raise ProtocolError(
            f"oversized message ({length} bytes > cap {max_payload})"
        )
    payload = _read_exact(stream, length) if length else b""
    return mtype, payload


async def read_message_async(reader, max_payload: int = MAX_PAYLOAD):
    """Asyncio flavor of :func:`read_message` over a ``StreamReader``."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None, b""
        raise ProtocolError(
            f"torn frame: connection closed after {len(exc.partial)} "
            f"header bytes"
        ) from exc
    mtype, length = _HEADER.unpack(header)
    if length > max_payload:
        raise ProtocolError(
            f"oversized message ({length} bytes > cap {max_payload})"
        )
    if not length:
        return mtype, b""
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"torn frame: connection closed with "
            f"{length - len(exc.partial)} of {length} payload bytes "
            f"outstanding"
        ) from exc
    return mtype, payload


# -- row text codec -----------------------------------------------------------------


def format_field(value) -> str:
    """One value as protocol text (``\\N`` = NULL, COPY-style escapes)."""
    if value is None:
        return "\\N"
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, (_dt.date, _dt.datetime, _dt.time)):
        return value.isoformat()
    text = str(value)
    if "\\" in text or "\t" in text or "\n" in text:
        text = (
            text.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")
        )
    return text


_UNESCAPES = {"t": "\t", "n": "\n", "\\": "\\"}


def parse_field(text: str):
    """Inverse of :func:`format_field` (typing happens at a higher layer).

    Decoded in a single left-to-right scan: chained ``str.replace`` calls
    would corrupt sequences like ``\\\\t`` (an escaped backslash followed
    by a literal ``t``) by re-interpreting the output of earlier passes.
    """
    if text == "\\N":
        return None
    if "\\" not in text:
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            nxt = text[i + 1]
            decoded = _UNESCAPES.get(nxt)
            if decoded is not None:
                out.append(decoded)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def encode_rows(rows: list, config: ProtocolConfig) -> bytes:
    """Serialize a batch of row tuples into one 'R' payload."""
    if config.length_prefixed_fields:
        parts = []
        for row in rows:
            for value in row:
                field = format_field(value).encode("utf-8")
                parts.append(len(field).to_bytes(4, "little"))
                parts.append(field)
            parts.append(b"\xff\xff\xff\xff")  # row terminator
        return b"".join(parts)
    lines = ["\t".join(format_field(v) for v in row) for row in rows]
    return "\n".join(lines).encode("utf-8")


def decode_rows(payload: bytes, config: ProtocolConfig) -> list:
    """Deserialize an 'R' payload into row tuples of (str | None)."""
    if config.length_prefixed_fields:
        rows = []
        row: list = []
        pos = 0
        while pos < len(payload):
            marker = payload[pos : pos + 4]
            pos += 4
            if marker == b"\xff\xff\xff\xff":
                rows.append(tuple(row))
                row = []
                continue
            length = int.from_bytes(marker, "little")
            row.append(parse_field(payload[pos : pos + length].decode("utf-8")))
            pos += length
        return rows
    if not payload:
        return []
    return [
        tuple(parse_field(f) for f in line.split("\t"))
        for line in payload.decode("utf-8").split("\n")
    ]


def sql_literal(value) -> str:
    """Render a Python value as a SQL literal for generated INSERTs."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (_dt.date, _dt.datetime)):
        return f"DATE '{value.isoformat()}'"
    text = str(value).replace("'", "''")
    return f"'{text}'"
