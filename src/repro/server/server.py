"""TCP server hosting either engine behind the wire protocol.

This is the classic thread-per-connection front end — the paper's
comparison-system shape.  The asyncio front end with admission control
lives in :mod:`repro.server.aio`; both share the protocol logic of
:mod:`repro.server.session`.
"""

from __future__ import annotations

import socket
import socketserver
import subprocess
import sys
import threading
import time

from repro.errors import DatabaseError, ProtocolError
from repro.server.protocol import (
    HEADER_BYTES,
    MAX_PAYLOAD,
    PROTOCOLS,
    ProtocolConfig,
    read_message,
    write_message,
)
from repro.server.session import CLOSE, Session, open_engine

__all__ = ["Server", "spawn_server_process"]


class Server:
    """A threaded localhost database server.

    ``engine`` selects the hosted engine: ``"columnar"`` (the MonetDB-server
    configuration: same engine as MonetDBLite, but behind a socket) or
    ``"rowstore"`` (the PostgreSQL/MariaDB-shaped configuration).  The
    server creates its own engine instance directly — a server process is
    its own deployment, so the embedded single-instance guard does not
    apply to it.

    ``allow_binary`` gates the negotiated binary columnar result format;
    disabling it makes the server behave like one predating the ``N``
    handshake (clients fall back to text).  ``max_payload`` caps inbound
    frame sizes.
    """

    def __init__(
        self,
        engine: str = "columnar",
        protocol: str | ProtocolConfig = "pg",
        directory: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        allow_binary: bool = True,
        max_payload: int = MAX_PAYLOAD,
    ):
        self.engine_kind = engine
        self.protocol = (
            protocol if isinstance(protocol, ProtocolConfig) else PROTOCOLS[protocol]
        )
        self.directory = directory
        self.host = host
        self._requested_port = port
        self._timeout = timeout
        self.allow_binary = allow_binary
        self.max_payload = max_payload
        self._tcp: socketserver.ThreadingTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._database = None

    # -- engine plumbing -----------------------------------------------------------

    def _open_engine(self):
        self._database = open_engine(
            self.engine_kind, self.directory, self._timeout
        )

    def _connect_engine(self):
        return self._database.connect()

    def _stats_incr(self, name: str, amount: int = 1) -> None:
        # RowDatabase has no stats object; the columnar engine does.
        stats = getattr(self._database, "_stats", None)
        if stats is not None:
            stats.incr(name, amount)

    def _send(self, wfile, mtype: bytes, payload: bytes) -> None:
        write_message(wfile, mtype, payload)
        self._stats_incr("bytes_sent", HEADER_BYTES + len(payload))

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._tcp is None:
            raise DatabaseError("server not started")
        return self._tcp.server_address[1]

    def start(self) -> "Server":
        """Bind and serve in a daemon thread; returns self."""
        self._open_engine()
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def setup(self):
                self.request.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                super().setup()

            def handle(self):
                server._serve_connection(self.rfile, self.wfile)

        class TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = TCP((self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True, name="repro-server"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            self._tcp = None
        if self._database is not None:
            shutdown = getattr(self._database, "shutdown", None) or getattr(
                self._database, "close", None
            )
            if shutdown is not None:
                shutdown()
            self._database = None

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- per-connection protocol loop --------------------------------------------------

    def _serve_connection(self, rfile, wfile) -> None:
        session = Session(
            self._database,
            self._connect_engine(),
            self.protocol,
            engine_kind=self.engine_kind,
            allow_binary=self.allow_binary,
        )
        try:
            self._send(wfile, b"Z", b"")
            wfile.flush()
            while True:
                mtype, payload = read_message(rfile, self.max_payload)
                if mtype is None:
                    return
                self._stats_incr("bytes_received", HEADER_BYTES + len(payload))
                copy_data = None
                copy_aborted = False
                if mtype == b"Q" and session.needs_copy_data(payload):
                    copy_data = self._receive_copy_data(rfile, wfile)
                    if copy_data is None:
                        copy_aborted = True
                frames = session.handle(
                    mtype,
                    payload,
                    copy_data=copy_data,
                    copy_aborted=copy_aborted,
                )
                if frames is CLOSE:
                    return
                for ftype, fpayload in frames:
                    self._send(wfile, ftype, fpayload)
                wfile.flush()
        except ProtocolError as exc:
            # a broken frame is unrecoverable for the stream, but tell the
            # peer why before hanging up (torn writes here are harmless)
            try:
                self._send(wfile, b"E", str(exc).encode("utf-8"))
                wfile.flush()
            except (OSError, ValueError):
                pass
            return
        except ConnectionError:
            return
        finally:
            session.close()

    def _receive_copy_data(self, rfile, wfile) -> bytes | None:
        """``G`` handshake: collect streamed ``d`` frames until ``c``/``f``."""
        self._send(wfile, b"G", b"")
        wfile.flush()
        parts = []
        while True:
            mtype, payload = read_message(rfile, self.max_payload)
            if mtype is None:
                raise ProtocolError("client closed the connection during COPY")
            self._stats_incr("bytes_received", HEADER_BYTES + len(payload))
            if mtype == b"d":
                parts.append(payload)
            elif mtype == b"c":
                return b"".join(parts)
            elif mtype == b"f":
                return None
            else:
                raise ProtocolError(
                    f"unexpected message {mtype!r} during COPY input"
                )


def spawn_server_process(
    engine: str = "columnar",
    protocol: str = "pg",
    directory: str | None = None,
    timeout: float | None = None,
    startup_wait: float = 15.0,
    use_async: bool = False,
):
    """Start a server in a separate Python process; returns (process, port).

    The separate process gives the socket configurations their own memory
    space and interpreter, as in the paper's client/server measurements.
    ``use_async`` spawns the asyncio front end instead of the threaded one.
    """
    args = [
        sys.executable,
        "-m",
        "repro.server",
        "--engine",
        engine,
        "--protocol",
        protocol,
        "--port",
        "0",
    ]
    if use_async:
        args.append("--async")
    if directory:
        args += ["--directory", directory]
    if timeout:
        args += ["--timeout", str(timeout)]
    process = subprocess.Popen(
        args, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )
    deadline = time.monotonic() + startup_wait
    line = process.stdout.readline()
    while not line.startswith("READY"):
        if time.monotonic() > deadline or process.poll() is not None:
            process.kill()
            raise DatabaseError("server process failed to start")
        line = process.stdout.readline()
    port = int(line.split()[1])
    return process, port
