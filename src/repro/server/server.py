"""TCP server hosting either engine behind the wire protocol."""

from __future__ import annotations

import json
import socket
import socketserver
import subprocess
import sys
import threading
import time

from repro.errors import DatabaseError, ProtocolError
from repro.obs.spans import Span, new_span_id, parse_traceparent
from repro.server.protocol import (
    COPY_CHUNK_BYTES,
    HEADER_BYTES,
    PROTOCOLS,
    ProtocolConfig,
    encode_rows,
    parse_field,
    read_message,
    write_message,
)

__all__ = ["Server", "spawn_server_process"]


class Server:
    """A threaded localhost database server.

    ``engine`` selects the hosted engine: ``"columnar"`` (the MonetDB-server
    configuration: same engine as MonetDBLite, but behind a socket) or
    ``"rowstore"`` (the PostgreSQL/MariaDB-shaped configuration).  The
    server creates its own engine instance directly — a server process is
    its own deployment, so the embedded single-instance guard does not
    apply to it.
    """

    def __init__(
        self,
        engine: str = "columnar",
        protocol: str | ProtocolConfig = "pg",
        directory: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
    ):
        self.engine_kind = engine
        self.protocol = (
            protocol if isinstance(protocol, ProtocolConfig) else PROTOCOLS[protocol]
        )
        self.directory = directory
        self.host = host
        self._requested_port = port
        self._timeout = timeout
        self._tcp: socketserver.ThreadingTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._database = None

    # -- engine plumbing -----------------------------------------------------------

    def _open_engine(self):
        if self.engine_kind == "columnar":
            from repro.core.database import Database

            self._database = Database(self.directory, timeout=self._timeout)
            return
        if self.engine_kind == "rowstore":
            from repro.rowstore import RowDatabase

            path = None
            if self.directory is not None:
                path = f"{self.directory}/rowstore.db"
            self._database = RowDatabase(path, timeout=self._timeout)
            return
        raise DatabaseError(f"unknown server engine {self.engine_kind!r}")

    def _connect_engine(self):
        return self._database.connect()

    def _stats_incr(self, name: str, amount: int = 1) -> None:
        # RowDatabase has no stats object; the columnar engine does.
        stats = getattr(self._database, "_stats", None)
        if stats is not None:
            stats.incr(name, amount)

    def _send(self, wfile, mtype: bytes, payload: bytes) -> None:
        write_message(wfile, mtype, payload)
        self._stats_incr("bytes_sent", HEADER_BYTES + len(payload))

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._tcp is None:
            raise DatabaseError("server not started")
        return self._tcp.server_address[1]

    def start(self) -> "Server":
        """Bind and serve in a daemon thread; returns self."""
        self._open_engine()
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def setup(self):
                self.request.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                super().setup()

            def handle(self):
                server._serve_connection(self.rfile, self.wfile)

        class TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = TCP((self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True, name="repro-server"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            self._tcp = None
        if self._database is not None:
            shutdown = getattr(self._database, "shutdown", None) or getattr(
                self._database, "close", None
            )
            if shutdown is not None:
                shutdown()
            self._database = None

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- per-connection protocol loop --------------------------------------------------

    def _serve_connection(self, rfile, wfile) -> None:
        conn = self._connect_engine()
        if hasattr(conn, "client"):
            conn.client = "tcp"  # tag the session for sys.sessions
        config = self.protocol
        trace_ctx = None  # (trace_id, parent span id) set by a 'T' frame
        try:
            self._send(wfile, b"Z", b"")
            wfile.flush()
            while True:
                mtype, payload = read_message(rfile)
                if mtype is None:
                    return
                self._stats_incr("bytes_received", HEADER_BYTES + len(payload))
                if mtype == b"X":
                    return
                if mtype == b"M":
                    self._handle_metrics(wfile)
                    continue
                if mtype == b"P":
                    self._handle_prepare(conn, payload, wfile)
                    continue
                if mtype == b"E":
                    self._handle_execute_prepared(conn, payload, wfile, config)
                    continue
                if mtype == b"D":
                    self._handle_deallocate(conn, payload, wfile)
                    continue
                if mtype == b"T":
                    trace_ctx = self._handle_trace_context(payload, wfile)
                    continue
                if mtype == b"t":
                    self._handle_trace_fetch(payload, wfile)
                    continue
                if mtype != b"Q":
                    self._send(
                        wfile, b"E", f"unexpected message {mtype!r}".encode()
                    )
                    self._send(wfile, b"Z", b"")
                    wfile.flush()
                    continue
                self._handle_query(
                    conn, payload.decode("utf-8"), rfile, wfile, config,
                    trace_ctx=trace_ctx,
                )
        except (ConnectionError, ProtocolError):
            return
        finally:
            close = getattr(conn, "close", None)
            if close is not None:
                close()

    def _handle_metrics(self, wfile) -> None:
        """``M``: Prometheus text exposition of the engine's metrics."""
        metrics_text = getattr(self._database, "metrics_text", None)
        if metrics_text is None:  # rowstore engine: no metrics registry
            self._send(wfile, b"E", b"engine does not expose metrics")
        else:
            self._send(wfile, b"M", metrics_text().encode("utf-8"))
        self._send(wfile, b"Z", b"")
        wfile.flush()

    def _send_error(self, wfile, exc) -> None:
        self._send(wfile, b"E", str(exc).encode("utf-8"))
        self._send(wfile, b"Z", b"")
        wfile.flush()

    def _handle_prepare(self, conn, payload: bytes, wfile) -> None:
        """``P``: register a named prepared statement for this session."""
        try:
            name, _, sql = payload.decode("utf-8").partition("\x00")
            prepare = getattr(conn, "prepare", None)
            if prepare is None:
                raise DatabaseError("engine does not support prepared statements")
            prepared = prepare(sql, name=name)
        except Exception as exc:
            self._send_error(wfile, exc)
            return
        self._send(wfile, b"C", f"0 nparams={prepared.nparams}".encode("utf-8"))
        self._send(wfile, b"Z", b"")
        wfile.flush()

    def _handle_execute_prepared(
        self, conn, payload: bytes, wfile, config: ProtocolConfig
    ) -> None:
        """``E``: run a prepared statement with row-text parameter values."""
        started = time.perf_counter()
        try:
            name, sep, fields = payload.decode("utf-8").partition("\x00")
            params = (
                tuple(parse_field(f) for f in fields.split("\t"))
                if sep and fields
                else ()
            )
            runner = getattr(conn, "execute_prepared", None)
            if runner is None:
                raise DatabaseError("engine does not support prepared statements")
            result = runner(name, params)
        except Exception as exc:
            self._send_error(wfile, exc)
            return
        self._send_result(result, wfile, config, started)

    def _handle_deallocate(self, conn, payload: bytes, wfile) -> None:
        """``D``: drop a named prepared statement."""
        try:
            deallocate = getattr(conn, "deallocate", None)
            if deallocate is None:
                raise DatabaseError("engine does not support prepared statements")
            deallocate(payload.decode("utf-8"))
        except Exception as exc:
            self._send_error(wfile, exc)
            return
        self._send(wfile, b"C", b"0")
        self._send(wfile, b"Z", b"")
        wfile.flush()

    def _handle_trace_context(self, payload: bytes, wfile):
        """``T``: install (or clear) the client's trace context.

        Returns the new per-connection context; spans of subsequent
        statements nest under the client's span via the tracer's wire
        context, so client and server sides merge into one trace.
        """
        context = None
        if payload:
            context = parse_traceparent(payload.decode("utf-8", "replace"))
            if context is None:
                self._send(wfile, b"E", b"malformed traceparent")
                self._send(wfile, b"Z", b"")
                wfile.flush()
                return None
        self._send(wfile, b"C", b"0")
        self._send(wfile, b"Z", b"")
        wfile.flush()
        return context

    def _handle_trace_fetch(self, payload: bytes, wfile) -> None:
        """``t``: ship the retained spans of one trace id as JSON."""
        tracer = getattr(self._database, "span_tracer", None)
        if tracer is None:
            self._send(wfile, b"E", b"engine does not record spans")
        else:
            trace_id = payload.decode("utf-8", "replace").strip()
            spans = tracer.export_dicts(trace_id) if trace_id else []
            self._send(wfile, b"t", json.dumps(spans).encode("utf-8"))
        self._send(wfile, b"Z", b"")
        wfile.flush()

    def _handle_query(
        self, conn, sql: str, rfile, wfile, config: ProtocolConfig,
        trace_ctx=None,
    ) -> None:
        started = time.perf_counter()
        tracer = getattr(self._database, "span_tracer", None)
        wire_span = None
        token = None
        if trace_ctx is not None and tracer is not None:
            trace_id, client_parent = trace_ctx
            wire_span = Span(
                trace_id, new_span_id(), client_parent, "server.query",
                "wire", getattr(conn, "session_id", 0),
                time.perf_counter_ns(), attrs={"sql": sql},
            )
            # statements executed on this thread now nest under the
            # client's span instead of opening their own trace
            token = tracer.set_wire_context(trace_id, wire_span.span_id)
        try:
            if self._copy_needs_data(sql):
                copy_data = self._receive_copy_data(rfile, wfile)
                if copy_data is None:
                    raise DatabaseError("COPY aborted by client")
                result = conn.execute(sql, copy_data=copy_data)
            else:
                result = conn.execute(sql)
        except ProtocolError:
            raise  # framing is broken; drop the connection
        except Exception as exc:  # errors travel the wire, never kill the server
            if wire_span is not None:
                wire_span.end_ns = time.perf_counter_ns()
                wire_span.status = "error"
                tracer.record_span(wire_span)
            self._send_error(wfile, exc)
            return
        finally:
            if token is not None:
                tracer.reset_wire_context(token)
        if wire_span is None:
            self._send_result(result, wfile, config, started)
            return
        serialize_start = time.perf_counter_ns()
        self._send_result(result, wfile, config, started)
        serialize_end = time.perf_counter_ns()
        tracer.record_span(Span(
            wire_span.trace_id, new_span_id(), wire_span.span_id,
            "serialize", "phase", wire_span.session, serialize_start,
            end_ns=serialize_end,
            attrs={"rows": result.nrows if result is not None else 0},
        ))
        wire_span.end_ns = serialize_end
        tracer.record_span(wire_span)

    def _copy_needs_data(self, sql: str) -> bool:
        """True for a single ``COPY ... FROM STDIN`` on the columnar engine."""
        if self.engine_kind != "columnar":
            return False
        try:
            from repro.sql import ast
            from repro.sql.parser import parse

            statements = parse(sql)
        except Exception:
            return False  # let execute() raise the real error
        return (
            len(statements) == 1
            and isinstance(statements[0], ast.CopyFromStmt)
            and statements[0].path is None
        )

    def _receive_copy_data(self, rfile, wfile) -> bytes | None:
        """``G`` handshake: collect streamed ``d`` frames until ``c``/``f``."""
        self._send(wfile, b"G", b"")
        wfile.flush()
        parts = []
        while True:
            mtype, payload = read_message(rfile)
            if mtype is None:
                raise ProtocolError("client closed the connection during COPY")
            self._stats_incr("bytes_received", HEADER_BYTES + len(payload))
            if mtype == b"d":
                parts.append(payload)
            elif mtype == b"c":
                return b"".join(parts)
            elif mtype == b"f":
                return None
            else:
                raise ProtocolError(
                    f"unexpected message {mtype!r} during COPY input"
                )

    def _send_result(self, result, wfile, config: ProtocolConfig, started) -> None:
        copy_text = getattr(result, "copy_text", None)
        if copy_text is not None:
            # COPY ... TO STDOUT: stream the CSV payload ahead of the
            # ordinary result sequence (which carries the export row count)
            self._send(wfile, b"H", b"")
            payload = copy_text.encode("utf-8")
            for start in range(0, len(payload), COPY_CHUNK_BYTES):
                self._send(
                    wfile, b"d", payload[start : start + COPY_CHUNK_BYTES]
                )
        if result is None:
            nrows = 0
        else:
            names = result.names
            types = [
                result._materialized.columns[i].type.name
                for i in range(result.ncols)
            ]
            description = "\t".join(
                f"{name}:{type_}" for name, type_ in zip(names, types)
            )
            self._send(wfile, b"D", description.encode("utf-8"))
            rows = result.fetchall()
            batch = config.rows_per_message
            for start in range(0, len(rows), batch):
                self._send(
                    wfile, b"R", encode_rows(rows[start : start + batch], config)
                )
            nrows = len(rows)
        elapsed_us = int((time.perf_counter() - started) * 1e6)
        # "C" payload: row count plus server-side execution time, so clients
        # can surface per-query stats without a second round trip.
        self._send(wfile, b"C", f"{nrows} time_us={elapsed_us}".encode("utf-8"))
        self._send(wfile, b"Z", b"")
        wfile.flush()


def spawn_server_process(
    engine: str = "columnar",
    protocol: str = "pg",
    directory: str | None = None,
    timeout: float | None = None,
    startup_wait: float = 15.0,
):
    """Start a server in a separate Python process; returns (process, port).

    The separate process gives the socket configurations their own memory
    space and interpreter, as in the paper's client/server measurements.
    """
    args = [
        sys.executable,
        "-m",
        "repro.server",
        "--engine",
        engine,
        "--protocol",
        protocol,
        "--port",
        "0",
    ]
    if directory:
        args += ["--directory", directory]
    if timeout:
        args += ["--timeout", str(timeout)]
    process = subprocess.Popen(
        args, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )
    deadline = time.monotonic() + startup_wait
    line = process.stdout.readline()
    while not line.startswith("READY"):
        if time.monotonic() > deadline or process.poll() is not None:
            process.kill()
            raise DatabaseError("server process failed to start")
        line = process.stdout.readline()
    port = int(line.split()[1])
    return process, port
