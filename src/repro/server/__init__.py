"""Client-server substrate: a real TCP socket around either engine.

The paper's slow comparison systems (PostgreSQL, MariaDB, MonetDB server)
are slow for *architectural* reasons: results cross a socket in row-major
text messages, and bulk loads degrade into per-row INSERT statements with a
round trip each (sections 1-2, Figures 5-6).  This package reproduces the
architecture with an actual localhost TCP server hosting either the
columnar or the row-store engine, and a DBI-style client
(``dbWriteTable``/``dbReadTable``) speaking a framed text protocol.

Protocol configs model the relevant differences between the emulated
systems: rows per data message (MonetDB's block protocol vs. one row per
message), rows per INSERT statement, and per-field length prefixing.
"""

from repro.server.protocol import PROTOCOLS, ProtocolConfig
from repro.server.server import Server, spawn_server_process
from repro.server.aio import AsyncServer
from repro.server.client import RemoteConnection

__all__ = [
    "PROTOCOLS",
    "ProtocolConfig",
    "Server",
    "AsyncServer",
    "RemoteConnection",
    "spawn_server_process",
]
