"""Transport-agnostic wire session: one connection's protocol brain.

Both server front ends — the classic thread-per-connection
:class:`repro.server.server.Server` and the asyncio
:class:`repro.server.aio.AsyncServer` — speak the same protocol; this
module holds the shared half.  A :class:`Session` owns one engine
connection plus the negotiated capabilities and turns each incoming
message into an ordered list of ``(type, payload)`` response frames.
The transport decides *where* the handling runs (inline on the
connection thread, or on a worker pool off the event loop) and how the
frames reach the socket.

Handling is synchronous and self-contained, so the async server can run
it on an executor thread: the contextvar-based trace wire context is
set and reset inside :meth:`Session.handle`, never across threads.
"""

from __future__ import annotations

import json
import time

from repro.errors import DatabaseError
from repro.obs.spans import Span, new_span_id, parse_traceparent
from repro.server.binary import BINARY_BATCH_ROWS, encode_block
from repro.server.protocol import (
    COPY_CHUNK_BYTES,
    ProtocolConfig,
    encode_rows,
    parse_field,
)

__all__ = ["Session", "open_engine", "CLOSE"]

#: Sentinel a transport may receive instead of frames: close the connection.
CLOSE = object()


def open_engine(kind: str, directory: str | None, timeout: float | None):
    """Create the hosted engine instance for a server front end."""
    if kind == "columnar":
        from repro.core.database import Database

        return Database(directory, timeout=timeout)
    if kind == "rowstore":
        from repro.rowstore import RowDatabase

        path = None
        if directory is not None:
            path = f"{directory}/rowstore.db"
        return RowDatabase(path, timeout=timeout)
    raise DatabaseError(f"unknown server engine {kind!r}")


class Session:
    """Protocol state and message dispatch for one client connection."""

    def __init__(
        self,
        database,
        conn,
        config: ProtocolConfig,
        *,
        engine_kind: str = "columnar",
        allow_binary: bool = True,
        client_tag: str = "tcp",
    ):
        self.database = database
        self.conn = conn
        self.config = config
        self.engine_kind = engine_kind
        self.allow_binary = allow_binary
        self.binary = False  # flips on when the client negotiates binary=1
        self.trace_ctx = None  # (trace_id, parent span id) from a 'T' frame
        self.inflight = 0  # statements queued or executing (async server)
        if hasattr(conn, "client"):
            conn.client = client_tag  # tag the session for sys.sessions
        self._tracer = getattr(database, "span_tracer", None)
        self._metrics = getattr(database, "metrics", None)

    # -- small helpers -------------------------------------------------------------

    def close(self) -> None:
        close = getattr(self.conn, "close", None)
        if close is not None:
            close()

    def _incr(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.incr(name, amount)

    @staticmethod
    def _error_frames(exc) -> list:
        return [(b"E", str(exc).encode("utf-8")), (b"Z", b"")]

    # -- COPY plumbing (the transport runs the d/c/f exchange) ----------------------

    def needs_copy_data(self, payload: bytes) -> bool:
        """True when a ``Q`` payload is a ``COPY ... FROM STDIN``."""
        if self.engine_kind != "columnar":
            return False  # rowstore engine has no COPY support
        try:
            from repro.sql import ast
            from repro.sql.parser import parse

            statements = parse(payload.decode("utf-8"))
        except Exception:
            return False  # let execute() raise the real error
        return (
            len(statements) == 1
            and isinstance(statements[0], ast.CopyFromStmt)
            and statements[0].path is None
        )

    # -- dispatch -------------------------------------------------------------------

    def handle(
        self,
        mtype: bytes,
        payload: bytes,
        *,
        copy_data: bytes | None = None,
        copy_aborted: bool = False,
        queue_wait_us: float | None = None,
    ):
        """Process one message; returns response frames or :data:`CLOSE`.

        ``copy_data`` carries the streamed STDIN payload when the
        transport already ran the ``G``/``d``/``c`` exchange for a COPY
        statement; ``copy_aborted`` marks a client ``f`` frame.
        ``queue_wait_us`` is how long the statement sat in the worker
        queue (async server) — recorded as a span when tracing.
        """
        if mtype == b"X":
            return CLOSE
        if mtype == b"N":
            return self._handle_negotiate(payload)
        if mtype == b"M":
            return self._handle_metrics()
        if mtype == b"P":
            return self._handle_prepare(payload)
        if mtype == b"E":
            return self._handle_execute_prepared(payload)
        if mtype == b"D":
            return self._handle_deallocate(payload)
        if mtype == b"T":
            return self._handle_trace_context(payload)
        if mtype == b"t":
            return self._handle_trace_fetch(payload)
        if mtype != b"Q":
            return [
                (b"E", f"unexpected message {mtype!r}".encode()),
                (b"Z", b""),
            ]
        return self._handle_query(
            payload.decode("utf-8"),
            copy_data=copy_data,
            copy_aborted=copy_aborted,
            queue_wait_us=queue_wait_us,
        )

    # -- individual message handlers -------------------------------------------------

    def _handle_negotiate(self, payload: bytes) -> list:
        """``N``: capability negotiation (currently just ``binary``)."""
        requested = {}
        for token in payload.decode("utf-8", "replace").split():
            key, _, value = token.partition("=")
            requested[key] = value
        accepted = []
        if requested.get("binary") == "1" and self.allow_binary:
            self.binary = True
            accepted.append("binary=1")
        return [
            (b"N", " ".join(accepted).encode("utf-8")),
            (b"Z", b""),
        ]

    def _handle_metrics(self) -> list:
        metrics_text = getattr(self.database, "metrics_text", None)
        if metrics_text is None:  # rowstore engine: no metrics registry
            return self._error_frames("engine does not expose metrics")
        return [
            (b"M", metrics_text().encode("utf-8")),
            (b"Z", b""),
        ]

    def _handle_prepare(self, payload: bytes) -> list:
        try:
            name, _, sql = payload.decode("utf-8").partition("\x00")
            prepare = getattr(self.conn, "prepare", None)
            if prepare is None:
                raise DatabaseError(
                    "engine does not support prepared statements"
                )
            prepared = prepare(sql, name=name)
        except Exception as exc:
            return self._error_frames(exc)
        return [
            (b"C", f"0 nparams={prepared.nparams}".encode("utf-8")),
            (b"Z", b""),
        ]

    def _handle_execute_prepared(self, payload: bytes) -> list:
        started = time.perf_counter()
        try:
            name, sep, fields = payload.decode("utf-8").partition("\x00")
            params = (
                tuple(parse_field(f) for f in fields.split("\t"))
                if sep and fields
                else ()
            )
            runner = getattr(self.conn, "execute_prepared", None)
            if runner is None:
                raise DatabaseError(
                    "engine does not support prepared statements"
                )
            result = runner(name, params)
        except Exception as exc:
            return self._error_frames(exc)
        return self._result_frames(result, started)

    def _handle_deallocate(self, payload: bytes) -> list:
        try:
            deallocate = getattr(self.conn, "deallocate", None)
            if deallocate is None:
                raise DatabaseError(
                    "engine does not support prepared statements"
                )
            deallocate(payload.decode("utf-8"))
        except Exception as exc:
            return self._error_frames(exc)
        return [(b"C", b"0"), (b"Z", b"")]

    def _handle_trace_context(self, payload: bytes) -> list:
        context = None
        if payload:
            context = parse_traceparent(payload.decode("utf-8", "replace"))
            if context is None:
                return self._error_frames("malformed traceparent")
        self.trace_ctx = context
        return [(b"C", b"0"), (b"Z", b"")]

    def _handle_trace_fetch(self, payload: bytes) -> list:
        tracer = self._tracer
        if tracer is None:
            return self._error_frames("engine does not record spans")
        trace_id = payload.decode("utf-8", "replace").strip()
        spans = tracer.export_dicts(trace_id) if trace_id else []
        return [
            (b"t", json.dumps(spans).encode("utf-8")),
            (b"Z", b""),
        ]

    def _handle_query(
        self,
        sql: str,
        *,
        copy_data: bytes | None,
        copy_aborted: bool,
        queue_wait_us: float | None,
    ) -> list:
        started = time.perf_counter()
        tracer = self._tracer
        wire_span = None
        token = None
        if self.trace_ctx is not None and tracer is not None:
            trace_id, client_parent = self.trace_ctx
            now_ns = time.perf_counter_ns()
            if queue_wait_us:
                tracer.record_span(
                    Span(
                        trace_id, new_span_id(), client_parent, "queue.wait",
                        "wire", getattr(self.conn, "session_id", 0),
                        now_ns - int(queue_wait_us * 1000), end_ns=now_ns,
                    )
                )
            wire_span = Span(
                trace_id, new_span_id(), client_parent, "server.query",
                "wire", getattr(self.conn, "session_id", 0),
                now_ns, attrs={"sql": sql},
            )
            # statements executed on this thread now nest under the
            # client's span instead of opening their own trace
            token = tracer.set_wire_context(trace_id, wire_span.span_id)
        try:
            if copy_aborted:
                raise DatabaseError("COPY aborted by client")
            if copy_data is not None:
                result = self.conn.execute(sql, copy_data=copy_data)
            else:
                result = self.conn.execute(sql)
        except Exception as exc:  # errors travel the wire, never kill the server
            if wire_span is not None:
                wire_span.end_ns = time.perf_counter_ns()
                wire_span.status = "error"
                tracer.record_span(wire_span)
            return self._error_frames(exc)
        finally:
            if token is not None:
                tracer.reset_wire_context(token)
        if wire_span is None:
            return self._result_frames(result, started)
        serialize_start = time.perf_counter_ns()
        frames = self._result_frames(result, started)
        serialize_end = time.perf_counter_ns()
        tracer.record_span(Span(
            wire_span.trace_id, new_span_id(), wire_span.span_id,
            "serialize", "phase", wire_span.session, serialize_start,
            end_ns=serialize_end,
            attrs={"rows": result.nrows if result is not None else 0},
        ))
        wire_span.end_ns = serialize_end
        tracer.record_span(wire_span)
        return frames

    # -- result serialization ---------------------------------------------------------

    def _result_frames(self, result, started) -> list:
        frames: list = []
        copy_text = getattr(result, "copy_text", None)
        if copy_text is not None:
            # COPY ... TO STDOUT: stream the CSV payload ahead of the
            # ordinary result sequence (which carries the export row count)
            frames.append((b"H", b""))
            payload = copy_text.encode("utf-8")
            for start in range(0, len(payload), COPY_CHUNK_BYTES):
                frames.append(
                    (b"d", payload[start : start + COPY_CHUNK_BYTES])
                )
        if result is None:
            nrows = 0
        else:
            names = result.names
            types = [
                result._materialized.columns[i].type.name
                for i in range(result.ncols)
            ]
            description = "\t".join(
                f"{name}:{type_}" for name, type_ in zip(names, types)
            )
            frames.append((b"D", description.encode("utf-8")))
            nrows = result.nrows
            if self.binary:
                columns = result._materialized.columns
                count_exported = getattr(result, "_count_exported", None)
                if count_exported is not None:
                    count_exported(nrows)
                wire_bytes = 0
                for start in range(0, nrows, BINARY_BATCH_ROWS) or [0]:
                    block = encode_block(
                        columns,
                        start,
                        min(start + BINARY_BATCH_ROWS, nrows),
                    )
                    wire_bytes += len(block)
                    frames.append((b"B", block))
                self._incr("wire_results_binary")
                self._incr("wire_bytes_binary", wire_bytes)
            else:
                rows = result.fetchall()
                batch = self.config.rows_per_message
                wire_bytes = 0
                for start in range(0, len(rows), batch):
                    encoded = encode_rows(
                        rows[start : start + batch], self.config
                    )
                    wire_bytes += len(encoded)
                    frames.append((b"R", encoded))
                self._incr("wire_results_text")
                self._incr("wire_bytes_text", wire_bytes)
        elapsed_us = int((time.perf_counter() - started) * 1e6)
        # "C" payload: row count plus server-side execution time, so clients
        # can surface per-query stats without a second round trip.
        frames.append(
            (b"C", f"{nrows} time_us={elapsed_us}".encode("utf-8"))
        )
        frames.append((b"Z", b""))
        return frames
