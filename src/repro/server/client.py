"""DBI-style client for the socket servers (dbWriteTable / dbReadTable).

This is the analytical tool's side of Figure 1(a): by default results
arrive row-by-row as text and must be parsed and pivoted into columnar
native arrays; bulk loads degenerate into generated INSERT statements
with one round trip per statement — the two costs the paper's Figures 5
and 6 measure.

``binary=True`` negotiates the binary columnar result format (``N``
handshake, ``B`` frames): the server ships length-prefixed typed column
blocks straight from its NumPy buffers and the client decodes them
*zero-pivot* into native arrays — no per-row parsing, no row-to-column
transpose.  Servers that predate the handshake answer with an error
frame and the client silently falls back to text.
"""

from __future__ import annotations

import datetime as _dt
import json
import socket
import time

import numpy as np

from repro.errors import DatabaseError, ProtocolError
from repro.obs.spans import make_traceparent, new_span_id, new_trace_id
from repro.server.binary import concat_columns, decode_block
from repro.server.protocol import (
    COPY_CHUNK_BYTES,
    MAX_PAYLOAD,
    PROTOCOLS,
    ProtocolConfig,
    decode_rows,
    format_field,
    read_message,
    sql_literal,
    write_message,
)
from repro.storage.types import days_to_date

__all__ = ["RemoteConnection", "RemoteResult"]

#: Default per-read timeout (seconds): a stalled server surfaces as a
#: clean error instead of blocking the client forever mid-frame.
DEFAULT_READ_TIMEOUT = 30.0

#: Default TCP connect timeout (seconds).
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Distinguishes "no per-call override" from an explicit ``timeout=None``
#: (which means "no limit for this call").
_UNSET = object()


class RemoteResult:
    """A fetched result: names, declared types, and the data.

    Text-protocol results hold typed row tuples; binary-protocol results
    hold decoded columns and materialize rows only on demand — the
    columnar access path never builds a single Python row.
    """

    def __init__(self, names: list, type_names: list, rows: list = None,
                 columns: list = None):
        self.names = names
        self.type_names = type_names
        self._rows = rows
        self._columns = columns  # list of binary.DecodedColumn, or None
        if rows is not None:
            self.nrows = len(rows)
        elif columns:
            self.nrows = columns[0].nrows
        else:
            self.nrows = 0
        self.ncols = len(names)
        #: CSV payload streamed by a ``COPY ... TO STDOUT`` (None otherwise)
        self.copy_text: str | None = None

    @property
    def rows(self) -> list:
        return self.fetchall()

    def fetchall(self) -> list:
        if self._rows is None:
            if not self._columns:
                self._rows = []
            else:
                self._rows = list(
                    zip(*(col.to_pylist() for col in self._columns))
                )
        return self._rows

    def scalar(self):
        if self.nrows != 1 or self.ncols != 1:
            raise DatabaseError(f"scalar() on {self.nrows}x{self.ncols} result")
        return self.fetchall()[0][0]

    def to_columns(self) -> dict:
        """Native columnar arrays, one per result column.

        Binary-protocol results decode straight from the wire blocks —
        the row-to-column pivot (and its cost) only exists on the text
        path, which is precisely the paper's serialization argument.
        """
        if self._columns is not None:
            return {
                name: col.to_array()
                for name, col in zip(self.names, self._columns)
            }
        out: dict = {}
        for index, (name, type_name) in enumerate(
            zip(self.names, self.type_names)
        ):
            values = [row[index] for row in self.fetchall()]
            base = type_name.split("(")[0].upper()
            if base in ("INTEGER", "INT", "BIGINT", "SMALLINT", "TINYINT",
                        "HUGEINT"):
                out[name] = np.asarray(
                    [np.nan if v is None else v for v in values], dtype=np.float64
                ) if any(v is None for v in values) else np.asarray(
                    values, dtype=np.int64
                )
            elif base in ("DOUBLE", "REAL", "FLOAT", "DECIMAL", "NUMERIC"):
                out[name] = np.asarray(
                    [np.nan if v is None else v for v in values], dtype=np.float64
                )
            elif base == "DATE":
                out[name] = np.asarray(values, dtype="datetime64[D]")
            else:
                out[name] = np.asarray(values, dtype=object)
        return out


class RemoteConnection:
    """Client connection over the wire protocol.

    ``timeout`` bounds every socket read (None = block forever, the old
    behavior); ``connect_timeout`` bounds the TCP handshake.  Individual
    ``execute``/``query`` calls accept a one-shot ``timeout`` override
    for statements known to run long.  ``binary=True`` requests the
    binary columnar result format, falling back to text against servers
    that do not speak it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        protocol: str | ProtocolConfig = "pg",
        *,
        binary: bool = False,
        timeout: float | None = DEFAULT_READ_TIMEOUT,
        connect_timeout: float | None = DEFAULT_CONNECT_TIMEOUT,
        max_payload: int = MAX_PAYLOAD,
    ):
        self.protocol = (
            protocol if isinstance(protocol, ProtocolConfig) else PROTOCOLS[protocol]
        )
        self._timeout = timeout
        self._max_payload = max_payload
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        #: Stats from the last command-complete message: row count and
        #: server-side execution time (None until the first query).
        self.last_status: dict | None = None
        #: Capabilities the server accepted during the ``N`` handshake.
        self.capabilities: dict = {}
        self.binary = False
        self._await_ready()
        if binary:
            self._negotiate({"binary": "1"})

    def close(self) -> None:
        try:
            write_message(self._wfile, b"X", b"")
            self._wfile.flush()
        except (OSError, ValueError):
            pass
        self._rfile.close()
        self._wfile.close()
        self._sock.close()

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _read_message(self):
        """One frame, with socket timeouts surfaced as protocol errors.

        After a timeout the stream position is undefined (a frame may be
        half-read), so the connection must be closed — queries cannot
        simply be retried on it.
        """
        try:
            return read_message(self._rfile, self._max_payload)
        except TimeoutError as exc:  # socket.timeout is an alias since 3.10
            raise ProtocolError(
                f"read timed out after {self._sock.gettimeout()}s "
                "(connection no longer usable)"
            ) from exc

    def _await_ready(self) -> None:
        mtype, payload = self._read_message()
        if mtype == b"E":
            # admission control: the server shed this connection cleanly
            raise DatabaseError(
                f"server rejected connection: {payload.decode('utf-8')}"
            )
        if mtype != b"Z":
            raise ProtocolError(f"expected ready message, got {mtype!r}")

    def _negotiate(self, requested: dict) -> None:
        """``N`` handshake; tolerates servers that predate the frame."""
        tokens = " ".join(f"{k}={v}" for k, v in requested.items())
        write_message(self._wfile, b"N", tokens.encode("utf-8"))
        self._wfile.flush()
        accepted: dict = {}
        while True:
            mtype, payload = self._read_message()
            if mtype is None:
                raise ProtocolError("server closed the connection")
            if mtype == b"N":
                for token in payload.decode("utf-8").split():
                    key, _, value = token.partition("=")
                    accepted[key] = value
            elif mtype == b"E":
                accepted = {}  # old server: no optional capabilities
            elif mtype == b"Z":
                break
        self.capabilities = accepted
        self.binary = accepted.get("binary") == "1"

    class _timeout_override:
        """Temporarily swap the socket timeout for one call."""

        def __init__(self, conn, timeout):
            self._conn = conn
            self._timeout = timeout

        def __enter__(self):
            if self._timeout is not _UNSET:
                self._conn._sock.settimeout(self._timeout)

        def __exit__(self, exc_type, exc, tb):
            if self._timeout is not _UNSET:
                self._conn._sock.settimeout(self._conn._timeout)

    # -- query path -----------------------------------------------------------------

    def execute(self, sql: str, *, timeout=_UNSET) -> RemoteResult | None:
        """Send one query; parse the streamed result messages.

        ``timeout`` (seconds, or None for no limit) overrides the
        connection read timeout for this call only.
        """
        with self._timeout_override(self, timeout):
            write_message(self._wfile, b"Q", sql.encode("utf-8"))
            self._wfile.flush()
            return self._read_query_response()

    def _read_query_response(self, first=None) -> RemoteResult | None:
        names: list = []
        type_names: list = []
        raw_rows: list = []
        blocks: list = []
        copy_parts: list | None = None
        error: str | None = None
        saw_description = False
        while True:
            if first is not None:
                mtype, payload = first
                first = None
            else:
                mtype, payload = self._read_message()
            if mtype is None:
                raise ProtocolError("server closed the connection")
            if mtype == b"D":
                saw_description = True
                for part in payload.decode("utf-8").split("\t"):
                    name, _, type_name = part.rpartition(":")
                    names.append(name)
                    type_names.append(type_name)
            elif mtype == b"R":
                raw_rows.extend(decode_rows(payload, self.protocol))
            elif mtype == b"B":
                blocks.append(decode_block(payload))
            elif mtype == b"H":
                copy_parts = []
            elif mtype == b"d":
                (copy_parts if copy_parts is not None else []).append(payload)
            elif mtype == b"G":
                # server wants COPY data but none was supplied through
                # copy_from(); finish the stream empty so it can respond
                write_message(self._wfile, b"c", b"")
                self._wfile.flush()
            elif mtype == b"E":
                error = payload.decode("utf-8")
            elif mtype == b"C":
                self.last_status = self._parse_complete(payload)
            elif mtype == b"Z":
                break
            else:
                raise ProtocolError(f"unexpected message {mtype!r}")
        if error is not None:
            raise DatabaseError(f"server error: {error}")
        if not saw_description:
            return None
        if blocks:
            result = RemoteResult(
                names, type_names, columns=concat_columns(blocks)
            )
        else:
            rows = [self._type_row(row, type_names) for row in raw_rows]
            result = RemoteResult(names, type_names, rows)
        if copy_parts is not None:
            result.copy_text = b"".join(copy_parts).decode("utf-8")
        return result

    def query(self, sql: str, *, timeout=_UNSET) -> RemoteResult:
        result = self.execute(sql, timeout=timeout)
        if result is None:
            raise DatabaseError("statement produced no result")
        return result

    # -- COPY streaming -----------------------------------------------------------------

    def copy_from(self, sql: str, data) -> int:
        """Bulk-load via ``COPY ... FROM STDIN``: stream ``data`` to the server.

        ``data`` is the CSV payload as str or bytes.  Returns the number of
        rows loaded.  This is the fast ingest path the DBI ``dbWriteTable``
        INSERT loop cannot match: one round trip, server-side parallel parse.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        write_message(self._wfile, b"Q", sql.encode("utf-8"))
        self._wfile.flush()
        mtype, payload = self._read_message()
        if mtype == b"G":
            for start in range(0, len(data), COPY_CHUNK_BYTES):
                write_message(
                    self._wfile, b"d", data[start : start + COPY_CHUNK_BYTES]
                )
            write_message(self._wfile, b"c", b"")
            self._wfile.flush()
            result = self._read_query_response()
        else:
            result = self._read_query_response(first=(mtype, payload))
        if result is not None and result.nrows:
            return int(result.fetchall()[0][0])
        return int((self.last_status or {}).get("rows", 0))

    def copy_to(self, sql: str) -> tuple:
        """``COPY ... TO STDOUT``: returns ``(csv_text, rows_exported)``."""
        result = self.query(sql)
        rows = int(result.fetchall()[0][0]) if result.nrows else 0
        return result.copy_text or "", rows

    # -- prepared statements ------------------------------------------------------------

    def prepare(self, name: str, sql: str) -> int:
        """``P``: register ``sql`` server-side; returns its parameter count."""
        payload = f"{name}\x00{sql}".encode("utf-8")
        write_message(self._wfile, b"P", payload)
        self._wfile.flush()
        self._read_query_response()
        status = self.last_status or {}
        return int(status.get("nparams", 0))

    def execute_prepared(self, name: str, params=()) -> RemoteResult | None:
        """``E``: run a server-side prepared statement with text params."""
        payload = str(name).encode("utf-8")
        if params:
            fields = "\t".join(format_field(v) for v in params)
            payload += b"\x00" + fields.encode("utf-8")
        write_message(self._wfile, b"E", payload)
        self._wfile.flush()
        return self._read_query_response()

    def deallocate(self, name: str) -> None:
        """``D``: drop a server-side prepared statement."""
        write_message(self._wfile, b"D", str(name).encode("utf-8"))
        self._wfile.flush()
        self._read_query_response()

    # -- distributed tracing ------------------------------------------------------------

    def set_trace_context(self, traceparent: str | None) -> None:
        """``T``: install (or clear, with None) the server trace context."""
        write_message(self._wfile, b"T", (traceparent or "").encode("utf-8"))
        self._wfile.flush()
        self._read_query_response()

    def fetch_trace(self, trace_id: str) -> list:
        """``t``: the span dicts the server retained for one trace id."""
        write_message(self._wfile, b"t", trace_id.encode("utf-8"))
        self._wfile.flush()
        spans: list = []
        error: str | None = None
        while True:
            mtype, payload = self._read_message()
            if mtype is None:
                raise ProtocolError("server closed the connection")
            if mtype == b"t":
                spans = json.loads(payload.decode("utf-8"))
            elif mtype == b"E":
                error = payload.decode("utf-8")
            elif mtype == b"Z":
                break
            else:
                raise ProtocolError(f"unexpected message {mtype!r}")
        if error is not None:
            raise DatabaseError(f"server error: {error}")
        return spans

    def trace_query(self, sql: str) -> tuple:
        """Run one query under a client trace; returns ``(result, spans)``.

        The client sends its ``traceparent`` ahead of the query, so the
        server's statement spans nest under a client root span covering
        the whole round trip.  ``spans`` is the merged list of span dicts
        (client root first) — one tree under one trace id; render it with
        :func:`repro.obs.spans.render_tree`.
        """
        trace_id = new_trace_id()
        root_id = new_span_id()
        self.set_trace_context(make_traceparent(trace_id, root_id))
        started_epoch = time.time()
        t0 = time.perf_counter_ns()
        try:
            result = self.execute(sql)
        finally:
            elapsed_us = (time.perf_counter_ns() - t0) / 1000.0
            self.set_trace_context(None)
        root = {
            "trace_id": trace_id, "span_id": root_id, "parent_id": None,
            "name": "client.query", "kind": "wire", "session": 0,
            "start_us": started_epoch * 1e6, "duration_us": elapsed_us,
            "status": "ok", "attrs": {"sql": sql},
        }
        return result, [root] + self.fetch_trace(trace_id)

    def metrics(self) -> str:
        """``M``: fetch the server's Prometheus-format metrics exposition."""
        write_message(self._wfile, b"M", b"")
        self._wfile.flush()
        text: str | None = None
        error: str | None = None
        while True:
            mtype, payload = self._read_message()
            if mtype is None:
                raise ProtocolError("server closed the connection")
            if mtype == b"M":
                text = payload.decode("utf-8")
            elif mtype == b"E":
                error = payload.decode("utf-8")
            elif mtype == b"Z":
                break
            else:
                raise ProtocolError(f"unexpected message {mtype!r}")
        if error is not None:
            raise DatabaseError(f"server error: {error}")
        return text or ""

    @staticmethod
    def _parse_complete(payload: bytes) -> dict:
        """Decode a ``C`` payload: ``<rows>`` optionally ``time_us=<n>``."""
        status: dict = {"rows": 0, "time_us": None}
        for part in payload.decode("utf-8").split():
            if part.isdigit():
                status["rows"] = int(part)
            elif "=" in part:
                key, _, raw = part.partition("=")
                try:
                    status[key] = int(raw)
                except ValueError:
                    pass
        return status

    @staticmethod
    def _type_row(row: tuple, type_names: list) -> tuple:
        out = []
        for text, type_name in zip(row, type_names):
            if text is None:
                out.append(None)
                continue
            base = type_name.split("(")[0].upper()
            if base in ("INTEGER", "INT", "BIGINT", "SMALLINT", "TINYINT",
                        "HUGEINT"):
                out.append(int(text))
            elif base in ("DOUBLE", "REAL", "FLOAT", "DECIMAL", "NUMERIC"):
                out.append(float(text))
            elif base == "DATE":
                out.append(_dt.date.fromisoformat(text))
            elif base == "BOOLEAN":
                out.append(text in ("t", "true", "True", "1"))
            else:
                out.append(text)
        return tuple(out)

    # -- DBI-style bulk paths ----------------------------------------------------------

    def db_write_table(
        self,
        table: str,
        data: dict,
        type_names: list,
        create_sql: str | None = None,
        rows_per_insert: int | None = None,
    ) -> int:
        """``dbWriteTable``: ship a client-side frame via INSERT statements.

        ``type_names`` gives the SQL type per column (schema order) so
        epoch-day integers become DATE literals etc.  One INSERT statement
        per ``rows_per_insert`` rows, one round trip per statement — the
        paper's explanation for the socket systems' ingest collapse.
        """
        if create_sql is not None:
            self.execute(create_sql)
        columns = list(data)
        converted = [
            _client_values(np.asarray(data[c]), t)
            for c, t in zip(columns, type_names)
        ]
        nrows = len(converted[0]) if converted else 0
        batch = rows_per_insert or self.protocol.rows_per_insert
        prefix = f"INSERT INTO {table} ({', '.join(columns)}) VALUES "
        for start in range(0, nrows, batch):
            stop = min(start + batch, nrows)
            tuples = []
            for i in range(start, stop):
                tuples.append(
                    "(" + ", ".join(
                        sql_literal(col[i]) for col in converted
                    ) + ")"
                )
            self.execute(prefix + ", ".join(tuples))
        return nrows

    def db_read_table(self, table: str) -> dict:
        """``dbReadTable``: SELECT * and pivot into native columnar arrays."""
        return self.query(f"SELECT * FROM {table}").to_columns()


def _client_values(array: np.ndarray, type_name: str) -> list:
    """Columnar client data -> python values ready for literal rendering."""
    base = type_name.split("(")[0].upper()
    if base == "DATE" and array.dtype.kind in "iu":
        return [days_to_date(int(v)) for v in array]
    if array.dtype.kind == "f":
        return [None if np.isnan(v) else float(v) for v in array]
    if array.dtype.kind in "iu":
        return [int(v) for v in array]
    return list(array)
