"""CLI entry point: ``python -m repro.server --engine columnar --port 0``.

``--async`` serves through the asyncio front end
(:class:`repro.server.aio.AsyncServer`) with admission control; the
default remains the classic thread-per-connection server.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.server.aio import AsyncServer
from repro.server.server import Server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro database server")
    parser.add_argument("--engine", choices=["columnar", "rowstore"],
                        default="columnar")
    parser.add_argument("--protocol", default="pg",
                        choices=["pg", "mysql", "monetdb"])
    parser.add_argument("--directory", default=None)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="serve through the asyncio front end")
    parser.add_argument("--max-sessions", type=int, default=256,
                        help="async: connection cap before shedding")
    parser.add_argument("--queue-depth", type=int, default=128,
                        help="async: global in-flight statement cap")
    parser.add_argument("--session-quota", type=int, default=8,
                        help="async: per-session in-flight statement cap")
    parser.add_argument("--workers", type=int, default=8,
                        help="async: execution worker threads")
    parser.add_argument("--no-binary", action="store_true",
                        help="refuse binary result negotiation")
    args = parser.parse_args(argv)

    common = dict(
        engine=args.engine,
        protocol=args.protocol,
        directory=args.directory,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        allow_binary=not args.no_binary,
    )
    if args.use_async:
        server = AsyncServer(
            **common,
            max_sessions=args.max_sessions,
            max_queue_depth=args.queue_depth,
            session_quota=args.session_quota,
            workers=args.workers,
        )
    else:
        server = Server(**common)
    server.start()
    print(f"READY {server.port}", flush=True)

    stop = {"flag": False}

    def handle(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)
    try:
        while not stop["flag"]:
            signal.pause()
    except KeyboardInterrupt:
        pass
    server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
