"""CLI entry point: ``python -m repro.server --engine columnar --port 0``."""

from __future__ import annotations

import argparse
import signal
import sys

from repro.server.server import Server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro database server")
    parser.add_argument("--engine", choices=["columnar", "rowstore"],
                        default="columnar")
    parser.add_argument("--protocol", default="pg",
                        choices=["pg", "mysql", "monetdb"])
    parser.add_argument("--directory", default=None)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None)
    args = parser.parse_args(argv)

    server = Server(
        engine=args.engine,
        protocol=args.protocol,
        directory=args.directory,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
    )
    server.start()
    print(f"READY {server.port}", flush=True)

    stop = {"flag": False}

    def handle(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)
    try:
        while not stop["flag"]:
            signal.pause()
    except KeyboardInterrupt:
        pass
    server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
