"""Asyncio server front end: high-concurrency accept path with admission
control, backpressure, and a bounded execution pool.

Architecture (DESIGN.md §11):

* **Acceptor + protocol parsing on the event loop.**  One asyncio task
  pair per connection — a *reader* that parses frames and dispatches
  statements, and a *writer* that ships response frames strictly in
  request order.  The loop itself never executes SQL.
* **Bounded worker pool.**  Statements run on a ``ThreadPoolExecutor``
  via ``run_in_executor`` — the engine's kernels are NumPy-heavy and
  release the GIL, so pool threads give real overlap while the loop
  stays responsive to thousands of idle sockets.
* **Admission control.**  ``max_sessions`` caps concurrent connections:
  over-limit clients receive a clean ``E`` frame and are disconnected
  (never silently queued).  ``max_queue_depth`` caps statements queued
  or executing across all sessions, and ``session_quota`` caps one
  session's in-flight pipeline; both shed with an ``E`` + ``Z`` so the
  client sees a normal (failed) statement, not a stall.
* **Graceful drain.**  ``stop()`` closes the listener, lets in-flight
  statements finish (up to ``drain_timeout`` seconds) with their
  responses flushed, then tears down connections, pool, and engine.

The per-message protocol logic is shared with the threaded server via
:class:`repro.server.session.Session`.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import DatabaseError, ProtocolError
from repro.server.protocol import (
    HEADER_BYTES,
    MAX_PAYLOAD,
    PROTOCOLS,
    ProtocolConfig,
    read_message_async,
)
from repro.server.session import CLOSE, Session, open_engine

__all__ = ["AsyncServer"]

_HEADER_PACK = __import__("struct").Struct("<cI").pack


class _Connection:
    """Bookkeeping for one live client connection."""

    __slots__ = ("session", "outq", "reader_task", "writer_task", "writer")

    def __init__(self, session, outq, writer):
        self.session = session
        self.outq = outq
        self.writer = writer
        self.reader_task = None
        self.writer_task = None


class AsyncServer:
    """An asyncio database server with admission control.

    Drop-in alternative to :class:`repro.server.server.Server`: the event
    loop runs in a daemon thread, so ``start()``/``stop()``/``port`` work
    from synchronous code and tests.  Clients, protocol configs, and the
    binary result format are identical between the two front ends.
    """

    def __init__(
        self,
        engine: str = "columnar",
        protocol: str | ProtocolConfig = "pg",
        directory: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
        *,
        max_sessions: int = 256,
        max_queue_depth: int = 128,
        session_quota: int = 8,
        workers: int = 8,
        drain_timeout: float = 5.0,
        allow_binary: bool = True,
        max_payload: int = MAX_PAYLOAD,
    ):
        self.engine_kind = engine
        self.protocol = (
            protocol if isinstance(protocol, ProtocolConfig) else PROTOCOLS[protocol]
        )
        self.directory = directory
        self.host = host
        self._requested_port = port
        self._timeout = timeout
        self.max_sessions = max_sessions
        self.max_queue_depth = max_queue_depth
        self.session_quota = session_quota
        self.workers = workers
        self.drain_timeout = drain_timeout
        self.allow_binary = allow_binary
        self.max_payload = max_payload

        self._database = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._conns: set = set()
        self._queued = 0  # statements queued or executing, all sessions
        self._draining = False
        self._port: int | None = None

    # -- metrics plumbing ----------------------------------------------------------

    @property
    def database(self):
        return self._database

    @property
    def _metrics(self):
        return getattr(self._database, "metrics", None)

    def _incr(self, name: str, amount: int = 1) -> None:
        stats = getattr(self._database, "_stats", None)
        if stats is not None:
            stats.incr(name, amount)

    def _gauge_delta(self, name: str, delta: float) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.incr_gauge(name, delta)

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise DatabaseError("server not started")
        return self._port

    def start(self) -> "AsyncServer":
        """Open the engine, start the loop thread, bind the listener."""
        self._database = open_engine(
            self.engine_kind, self.directory, self._timeout
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-aio"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True, name="repro-aio-loop"
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self._open_listener(), self._loop
        )
        try:
            future.result(timeout=15.0)
        except Exception:
            self.stop()
            raise
        return self

    async def _open_listener(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        """Graceful drain: finish in-flight work, then tear everything down."""
        if self._loop is not None and self._loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop
            ).result(timeout=self.drain_timeout + 10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._loop.close()
        self._loop = None
        self._thread = None
        self._server = None
        self._port = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._database is not None:
            shutdown = getattr(self._database, "shutdown", None) or getattr(
                self._database, "close", None
            )
            if shutdown is not None:
                shutdown()
            self._database = None

    async def _shutdown(self) -> None:
        self._draining = True  # new statements shed from here on
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + self.drain_timeout
        while self._loop.time() < deadline:
            if not self._conns or all(
                conn.outq.empty() and conn.session.inflight == 0
                for conn in self._conns
            ):
                break
            await asyncio.sleep(0.02)
        # give writers a beat to flush final frames, then force-close
        await asyncio.sleep(0)
        for conn in list(self._conns):
            await self._teardown(conn)

    async def _teardown(self, conn: _Connection) -> None:
        self._conns.discard(conn)
        current = asyncio.current_task()
        for task in (conn.reader_task, conn.writer_task):
            if task is not None and task is not current and not task.done():
                task.cancel()
        try:
            conn.writer.close()
        except Exception:
            pass
        conn.session.close()
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("server_sessions", len(self._conns))

    def __enter__(self) -> "AsyncServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------------

    def _write_frame(self, writer, mtype: bytes, payload: bytes) -> None:
        writer.write(_HEADER_PACK(mtype, len(payload)))
        if payload:
            writer.write(payload)
        self._incr("bytes_sent", HEADER_BYTES + len(payload))

    async def _client_connected(self, reader, writer) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        if self._draining or len(self._conns) >= self.max_sessions:
            # admission control: shed with a clean error frame, never
            # accept unbounded connections into a silent backlog
            self._incr("server_shed_connections")
            reason = (
                "server shutting down"
                if self._draining
                else f"server at capacity (max_sessions={self.max_sessions})"
            )
            self._write_frame(writer, b"E", reason.encode("utf-8"))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        try:
            engine_conn = self._database.connect()
        except Exception as exc:
            self._write_frame(writer, b"E", str(exc).encode("utf-8"))
            writer.close()
            return
        session = Session(
            self._database,
            engine_conn,
            self.protocol,
            engine_kind=self.engine_kind,
            allow_binary=self.allow_binary,
            client_tag="tcp-async",
        )
        conn = _Connection(session, asyncio.Queue(), writer)
        self._conns.add(conn)
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("server_sessions", len(self._conns))
        conn.writer_task = self._loop.create_task(self._writer_loop(conn))
        conn.reader_task = self._loop.create_task(self._reader_loop(reader, conn))

    async def _reader_loop(self, reader, conn: _Connection) -> None:
        session = conn.session
        try:
            self._write_frame(conn.writer, b"Z", b"")
            await conn.writer.drain()
            while True:
                mtype, payload = await read_message_async(
                    reader, self.max_payload
                )
                if mtype is None or mtype == b"X":
                    await conn.outq.put(CLOSE)
                    return
                self._incr("bytes_received", HEADER_BYTES + len(payload))
                copy_data = None
                copy_aborted = False
                if mtype == b"Q" and session.needs_copy_data(payload):
                    # COPY is stop-and-wait: quiesce the pipeline, then
                    # run the G/d/c handshake inline on the loop
                    await self._quiesce(conn)
                    copy_data = await self._receive_copy_data(reader, conn)
                    if copy_data is None:
                        copy_aborted = True
                await self._dispatch(
                    conn, mtype, payload, copy_data, copy_aborted
                )
        except ProtocolError as exc:
            await conn.outq.put([(b"E", str(exc).encode("utf-8"))])
            await conn.outq.put(CLOSE)
        except (ConnectionError, asyncio.CancelledError):
            await conn.outq.put(CLOSE)
        except Exception as exc:  # defensive: never kill the loop silently
            await conn.outq.put([(b"E", str(exc).encode("utf-8"))])
            await conn.outq.put(CLOSE)

    async def _quiesce(self, conn: _Connection) -> None:
        while conn.session.inflight > 0:
            await asyncio.sleep(0.001)

    async def _receive_copy_data(self, reader, conn: _Connection):
        """Inline ``G`` handshake (reader and writer are quiesced)."""
        self._write_frame(conn.writer, b"G", b"")
        await conn.writer.drain()
        parts = []
        while True:
            mtype, payload = await read_message_async(reader, self.max_payload)
            if mtype is None:
                raise ProtocolError("client closed the connection during COPY")
            self._incr("bytes_received", HEADER_BYTES + len(payload))
            if mtype == b"d":
                parts.append(payload)
            elif mtype == b"c":
                return b"".join(parts)
            elif mtype == b"f":
                return None
            else:
                raise ProtocolError(
                    f"unexpected message {mtype!r} during COPY input"
                )

    async def _dispatch(
        self, conn, mtype, payload, copy_data, copy_aborted
    ) -> None:
        session = conn.session
        if self._draining:
            self._incr("server_shed_statements")
            await conn.outq.put(
                [(b"E", b"server shutting down"), (b"Z", b"")]
            )
            return
        if session.inflight >= self.session_quota:
            self._incr("server_shed_statements")
            await conn.outq.put(
                [
                    (
                        b"E",
                        f"session quota exceeded "
                        f"({self.session_quota} statements in flight)"
                        .encode("utf-8"),
                    ),
                    (b"Z", b""),
                ]
            )
            return
        if self._queued >= self.max_queue_depth:
            # backpressure: shed instead of queueing without bound
            self._incr("server_shed_statements")
            await conn.outq.put(
                [
                    (
                        b"E",
                        f"server overloaded (queue depth "
                        f"{self.max_queue_depth} reached)".encode("utf-8"),
                    ),
                    (b"Z", b""),
                ]
            )
            return
        session.inflight += 1
        self._queued += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("server_queue_depth", self._queued)
        enqueued = time.perf_counter()
        future = self._loop.run_in_executor(
            self._pool,
            self._run_statement,
            session,
            mtype,
            payload,
            copy_data,
            copy_aborted,
            enqueued,
        )
        future.add_done_callback(self._statement_done)
        await conn.outq.put(future)

    def _statement_done(self, _future) -> None:
        self._queued -= 1
        metrics = self._metrics
        if metrics is not None:
            metrics.set_gauge("server_queue_depth", self._queued)

    def _run_statement(
        self, session, mtype, payload, copy_data, copy_aborted, enqueued
    ):
        """Worker-pool body: record queue wait, run the session handler."""
        queue_wait_us = (time.perf_counter() - enqueued) * 1e6
        metrics = self._metrics
        if metrics is not None:
            metrics.observe("server_queue_wait_us", queue_wait_us)
        try:
            return session.handle(
                mtype,
                payload,
                copy_data=copy_data,
                copy_aborted=copy_aborted,
                queue_wait_us=queue_wait_us,
            )
        except Exception as exc:  # engine bugs become error frames, not hangs
            return [(b"E", str(exc).encode("utf-8")), (b"Z", b"")]

    async def _writer_loop(self, conn: _Connection) -> None:
        """Ship responses strictly in request order; drain() applies
        TCP backpressure to slow readers."""
        session = conn.session
        try:
            while True:
                item = await conn.outq.get()
                if item is CLOSE:
                    return
                if isinstance(item, list):
                    frames = item
                else:
                    try:
                        frames = await item
                    finally:
                        session.inflight -= 1
                    if frames is CLOSE:
                        return
                for ftype, fpayload in frames:
                    self._write_frame(conn.writer, ftype, fpayload)
                await conn.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            if conn in self._conns:
                await self._teardown(conn)
