"""The embedded row-store database: tables, connections, DML.

Shares the SQL front-end, binder and optimizer with the columnar engine;
storage is B+trees of encoded records, execution is Volcano.  The public
surface mirrors :class:`repro.core.connection.Connection` so the benchmark
harness drives both engines through one adapter.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.algebra import nodes as N
from repro.algebra.binder import bind_statement
from repro.algebra.optimizer import optimize
from repro.core.result import Result
from repro.errors import CatalogError, InterfaceError
from repro.mal.interpreter import MaterializedResult
from repro.rowstore.btree import BPlusTree
from repro.rowstore.pager import PageFile
from repro.rowstore.record import decode_record, encode_record
from repro.rowstore.row_eval import eval_row
from repro.rowstore.volcano import VolcanoContext, open_plan
from repro.sql.parser import parse
from repro.storage import types as T
from repro.storage.catalog import ColumnDef, TableSchema
from repro.storage.column import Column
from repro.storage.types import parse_type

__all__ = ["RowDatabase", "RowConnection", "RowTable"]


class RowTable:
    """One table: schema plus a rowid-keyed B+tree of encoded records."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.tree = BPlusTree()
        self.next_rowid = 1

    @property
    def nrows(self) -> int:
        return len(self.tree)

    def insert_row(self, values: tuple) -> bytes:
        record = encode_record(values)
        self.insert_encoded(record)
        return record

    def insert_encoded(self, record: bytes) -> int:
        rowid = self.next_rowid
        self.next_rowid += 1
        self.tree.insert(rowid, record)
        return rowid

    def rows(self):
        """Decode and yield every row in rowid order (full-row decode:
        the row-major layout cannot skip unused columns)."""
        for _, record in self.tree.scan():
            yield decode_record(record)

    def rows_with_ids(self):
        for rowid, record in self.tree.scan():
            yield rowid, decode_record(record)


class RowDatabase:
    """An embedded row-store instance (in-memory or single-file)."""

    def __init__(self, path: str | Path | None = None, timeout: float | None = None):
        self.path = Path(path) if path else None
        self.timeout = timeout
        self._tables: dict = {}
        self._lock = threading.RLock()
        self._journal = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if PageFile(self.path).exists():
                self._load()
            from repro.storage.wal import WriteAheadLog

            journal_path = self.path.with_suffix(".journal")
            self._replay_journal(journal_path)
            self._journal = WriteAheadLog(journal_path)

    # -- persistence -----------------------------------------------------------------
    #
    # Commit durability comes from an append-only journal (the analog of
    # SQLite's WAL mode): each committed statement appends its effects and
    # fsyncs.  checkpoint() folds the journal into the page image.

    def _load(self) -> None:
        content = PageFile(self.path).read()
        for name, entry in content.items():
            columns = [
                ColumnDef(c["name"], parse_type(c["type"]), c["not_null"])
                for c in entry["schema"]
            ]
            table = RowTable(TableSchema(name, columns))
            for record in entry["records"]:
                table.insert_encoded(record)
            self._tables[name.lower()] = table

    def _replay_journal(self, journal_path: Path) -> None:
        from repro.storage.wal import WriteAheadLog

        for entry in WriteAheadLog.replay(journal_path):
            op = entry["op"]
            if op == "create_table":
                columns = [
                    ColumnDef(c["name"], parse_type(c["type"]), c["not_null"])
                    for c in entry["schema"]
                ]
                self._tables[entry["name"].lower()] = RowTable(
                    TableSchema(entry["name"], columns)
                )
            elif op == "drop_table":
                self._tables.pop(entry["name"].lower(), None)
            elif op == "insert":
                table = self._tables.get(entry["table"].lower())
                if table is not None:
                    for record in entry["records"]:
                        table.insert_encoded(record)
            elif op == "delete":
                table = self._tables.get(entry["table"].lower())
                if table is not None:
                    for rowid in entry["rowids"]:
                        table.tree.delete(rowid)
            elif op == "update":
                table = self._tables.get(entry["table"].lower())
                if table is not None:
                    for rowid, record in entry["rows"]:
                        table.tree.delete(rowid)
                        table.tree.insert(rowid, record)

    def log(self, record: dict) -> None:
        """Durably journal one committed statement's effects."""
        if self._journal is not None:
            self._journal.append(record)

    def commit(self) -> None:
        """Kept for API symmetry: durability is provided per-statement by
        the journal; an explicit COMMIT is a no-op in autocommit mode."""

    def checkpoint(self) -> None:
        """Fold the journal into the page image and truncate it."""
        if self.path is None:
            return
        content = {}
        for name, table in self._tables.items():
            content[name] = {
                "schema": [
                    {"name": c.name, "type": c.type.name, "not_null": c.not_null}
                    for c in table.schema.columns
                ],
                "records": [record for _, record in table.tree.scan()],
            }
        PageFile(self.path).write(content)
        if self._journal is not None:
            self._journal.truncate()

    # -- catalog ---------------------------------------------------------------------

    def table(self, name: str) -> RowTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def create_table(self, schema: TableSchema, if_not_exists: bool = False):
        with self._lock:
            key = schema.name.lower()
            if key in self._tables:
                if if_not_exists:
                    return self._tables[key]
                raise CatalogError(f"table {schema.name!r} already exists")
            table = RowTable(schema)
            self._tables[key] = table
            self.log(
                {
                    "op": "create_table",
                    "name": schema.name,
                    "schema": [
                        {
                            "name": c.name,
                            "type": c.type.name,
                            "not_null": c.not_null,
                        }
                        for c in schema.columns
                    ],
                }
            )
            return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            if name.lower() not in self._tables:
                if if_exists:
                    return
                raise CatalogError(f"no such table: {name!r}")
            del self._tables[name.lower()]
            self.log({"op": "drop_table", "name": name})

    def list_tables(self) -> list:
        return sorted(self._tables)

    def connect(self) -> "RowConnection":
        return RowConnection(self)

    def close(self) -> None:
        self.checkpoint()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        self._tables.clear()


class RowConnection:
    """Query interface over a :class:`RowDatabase` (autocommit)."""

    def __init__(self, database: RowDatabase):
        self._database = database
        self._open = True

    def close(self) -> None:
        self._open = False

    def __enter__(self) -> "RowConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def execute(self, sql: str) -> Result | None:
        if not self._open:
            raise InterfaceError("connection is closed")
        result = None
        for statement in parse(sql):
            result = self._execute_statement(statement)
        return result

    def query(self, sql: str) -> Result:
        result = self.execute(sql)
        if result is None:
            raise InterfaceError("statement produced no result")
        return result

    def _execute_statement(self, statement) -> Result | None:
        db = self._database
        bound = bind_statement(statement, lambda name: db.table(name).schema)
        if isinstance(bound, N.BoundSelect):
            return self._run_select(bound)
        if isinstance(bound, N.BoundCreateTable):
            db.create_table(bound.schema, bound.if_not_exists)
            return None
        if isinstance(bound, N.BoundDropTable):
            db.drop_table(bound.name, bound.if_exists)
            return None
        if isinstance(bound, N.BoundInsert):
            self._run_insert(bound)
            return None
        if isinstance(bound, N.BoundDelete):
            self._run_delete(bound)
            return None
        if isinstance(bound, N.BoundUpdate):
            self._run_update(bound)
            return None
        if isinstance(bound, N.BoundTransaction):
            if bound.action == "commit":
                db.commit()
            return None  # begin/rollback: autocommit engine, no-ops
        raise InterfaceError(f"row store cannot execute {type(bound).__name__}")

    def _run_select(self, bound: N.BoundSelect) -> Result:
        db = self._database
        optimized = optimize(bound, lambda name: db.table(name).nrows)
        ctx = VolcanoContext(db, timeout=db.timeout)
        rows = list(open_plan(optimized.plan, ctx))
        types = [col.type for col in optimized.plan.output]
        columns = []
        for index, ctype in enumerate(types):
            columns.append(
                Column.from_storage_values(
                    ctype, [row[index] for row in rows]
                )
            )
        return Result(
            MaterializedResult(list(optimized.column_names), columns)
        )

    def _run_insert(self, bound: N.BoundInsert) -> int:
        table = self._database.table(bound.table_name)
        schema = table.schema
        if bound.select is not None:
            result = self._run_select(bound.select)
            source_rows = []
            raw_columns = [
                result._materialized.columns[i]
                for i in range(len(bound.column_indexes))
            ]
            storage_rows = list(
                zip(*[_column_storage_values(c) for c in raw_columns])
            ) if raw_columns else []
            source_rows = storage_rows
        else:
            source_rows = [
                tuple(
                    _to_storage_scalar(
                        schema.columns[idx].type, value
                    )
                    for value, idx in zip(row, bound.column_indexes)
                )
                for row in bound.rows
            ]
        position = {idx: pos for pos, idx in enumerate(bound.column_indexes)}
        inserted = []
        for row in source_rows:
            full = tuple(
                row[position[i]] if i in position else None
                for i in range(len(schema.columns))
            )
            self._check_not_null(schema, full)
            inserted.append(table.insert_row(full))
        if inserted:
            self._database.log(
                {"op": "insert", "table": bound.table_name, "records": inserted}
            )
        return len(source_rows)

    @staticmethod
    def _check_not_null(schema: TableSchema, row: tuple) -> None:
        for coldef, value in zip(schema.columns, row):
            if coldef.not_null and value is None:
                raise CatalogError(
                    f"NOT NULL constraint violated on "
                    f"{schema.name}.{coldef.name}"
                )

    def _run_delete(self, bound: N.BoundDelete) -> int:
        table = self._database.table(bound.table_name)
        ctx = VolcanoContext(self._database, timeout=self._database.timeout)
        doomed = []
        for rowid, row in table.rows_with_ids():
            if bound.predicate is None or eval_row(bound.predicate, row, ctx):
                doomed.append(rowid)
        for rowid in doomed:
            table.tree.delete(rowid)
        if doomed:
            self._database.log(
                {"op": "delete", "table": bound.table_name, "rowids": doomed}
            )
        return len(doomed)

    def _run_update(self, bound: N.BoundUpdate) -> int:
        table = self._database.table(bound.table_name)
        ctx = VolcanoContext(self._database, timeout=self._database.timeout)
        updates = []
        for rowid, row in table.rows_with_ids():
            if bound.predicate is None or eval_row(bound.predicate, row, ctx):
                new_row = list(row)
                for index, expr in bound.assignments:
                    new_row[index] = eval_row(expr, row, ctx)
                updates.append((rowid, tuple(new_row)))
        logged = []
        for rowid, new_row in updates:
            self._check_not_null(table.schema, new_row)
            record = encode_record(new_row)
            table.tree.delete(rowid)
            table.tree.insert(rowid, record)
            logged.append((rowid, record))
        if logged:
            self._database.log(
                {"op": "update", "table": bound.table_name, "rows": logged}
            )
        return len(updates)

    # -- bulk append (dbWriteTable path) ---------------------------------------------------

    def append(self, table_name: str, data) -> int:
        """Row-by-row bulk insert of columnar client data.

        The per-row encode+insert loop *is* the cost model of a row store's
        bulk path (SQLite's prepared-statement loop); the write lands on
        disk in one commit at the end.
        """
        table = self._database.table(table_name)
        schema = table.schema
        lowered = {str(k).lower(): v for k, v in data.items()}
        arrays = []
        for coldef in schema.columns:
            if coldef.name.lower() not in lowered:
                raise CatalogError(
                    f"append to {table_name}: missing column {coldef.name!r}"
                )
            arrays.append(
                _storage_domain_list(coldef.type, lowered[coldef.name.lower()])
            )
        inserted = []
        for row in zip(*arrays):
            inserted.append(table.insert_row(row))
        if inserted:
            self._database.log(
                {"op": "insert", "table": table_name, "records": inserted}
            )
        return len(inserted)


def _to_storage_scalar(ctype: T.SQLType, value):
    """Client value -> storage-domain Python scalar."""
    if value is None:
        return None
    if ctype.is_variable:
        return str(value) if not isinstance(value, bytes) else value
    stored = ctype.to_storage(value)
    if ctype.category == T.TypeCategory.FLOAT:
        return float(stored)
    return int(stored)


def _column_storage_values(column: Column) -> list:
    """Storage Column -> list of storage-domain scalars (None = NULL)."""
    if column.type.is_variable:
        return column.heap.get_many(column.data)
    nulls = column.is_null()
    if column.type.category == T.TypeCategory.FLOAT:
        return [
            None if is_null else float(v)
            for v, is_null in zip(column.data, nulls)
        ]
    return [
        None if is_null else int(v) for v, is_null in zip(column.data, nulls)
    ]


def _storage_domain_list(ctype: T.SQLType, array) -> list:
    """Client array -> storage-domain value list (vectorized where cheap)."""
    array = np.asarray(array)
    if ctype.is_variable:
        return [None if v is None else str(v) for v in array.tolist()]
    if ctype.category == T.TypeCategory.DECIMAL:
        if array.dtype.kind == "f":
            scaled = np.round(array * 10**ctype.scale)
            return [
                None if np.isnan(v) else int(s)
                for v, s in zip(array, scaled)
            ]
        return [int(v) * 10**ctype.scale for v in array.tolist()]
    if ctype.category == T.TypeCategory.FLOAT:
        return [None if np.isnan(v) else float(v) for v in array.tolist()]
    # integers / dates / times already in the storage domain
    return [int(v) for v in array.tolist()]
