"""Embedded row-store engine (the SQLite/PostgreSQL/MariaDB substrate).

A deliberately *traditional* engine, built the way the paper's comparison
systems are built:

* rows are encoded into self-describing records (:mod:`repro.rowstore.record`)
  and stored in a B+tree keyed by rowid (:mod:`repro.rowstore.btree`),
  persisted in 4 KiB pages (:mod:`repro.rowstore.pager`) — a row-major
  layout, so every scan decodes entire rows even when one column is needed;
* queries reuse the shared SQL front-end and optimizer but execute on a
  Volcano iterator engine (:mod:`repro.rowstore.volcano`) that processes one
  tuple at a time — the paper's explanation for why traditional systems are
  orders of magnitude slower on analytical queries.
"""

from repro.rowstore.engine import RowConnection, RowDatabase

__all__ = ["RowDatabase", "RowConnection"]
