"""Scalar (one-row-at-a-time) evaluation of bound expressions.

The row-store analog of :mod:`repro.mal.vector_eval`: the same bound
expression trees, evaluated per tuple with Python-level dispatch per value —
deliberately embodying the "tuple-at-a-time volcano processing model
[invoking] a lot of overhead for each tuple" (paper section 4.2).

Values live in the storage domain shared with bound constants (dates =
epoch days, decimals = scaled ints); NULL is ``None``.
"""

from __future__ import annotations

import numpy as np

from repro.algebra import expr as E
from repro.algebra.fold import _scalar_arith, _scalar_compare, _scalar_function
from repro.algebra.like import compile_like
from repro.errors import DatabaseError
from repro.storage import types as T

__all__ = ["eval_row"]

_like_cache: dict = {}


def eval_row(expression: E.BoundExpr, row: tuple, ctx):
    """Evaluate one bound expression against one row tuple.

    Predicates return True/False/None (SQL three-valued logic); values
    return storage-domain scalars or None.
    """
    if isinstance(expression, E.SlotRef):
        return row[expression.index]
    if isinstance(expression, E.Const):
        return expression.value
    if isinstance(expression, E.OuterRef):
        return ctx.outer_row()[expression.index]
    if isinstance(expression, E.Arith):
        left = eval_row(expression.left, row, ctx)
        right = eval_row(expression.right, row, ctx)
        if left is None or right is None:
            return None
        return _scalar_arith(expression.op, left, right)
    if isinstance(expression, E.Compare):
        left = eval_row(expression.left, row, ctx)
        right = eval_row(expression.right, row, ctx)
        if left is None or right is None:
            return None
        return _scalar_compare(expression.op, left, right)
    if isinstance(expression, E.BoolOp):
        saw_null = False
        if expression.op == "and":
            for arg in expression.args:
                value = eval_row(arg, row, ctx)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True
        for arg in expression.args:
            value = eval_row(arg, row, ctx)
            if value is None:
                saw_null = True
            elif value:
                return True
        return None if saw_null else False
    if isinstance(expression, E.NotExpr):
        value = eval_row(expression.operand, row, ctx)
        return None if value is None else not value
    if isinstance(expression, E.IsNullExpr):
        value = eval_row(expression.operand, row, ctx)
        return (value is None) != expression.negated
    if isinstance(expression, E.CaseWhen):
        for condition, result in expression.whens:
            if eval_row(condition, row, ctx):
                return eval_row(result, row, ctx)
        if expression.else_result is not None:
            return eval_row(expression.else_result, row, ctx)
        return None
    if isinstance(expression, E.FuncCall):
        args = [eval_row(a, row, ctx) for a in expression.args]
        return _scalar_function(expression.name, args)
    if isinstance(expression, E.LikeExpr):
        value = eval_row(expression.operand, row, ctx)
        if value is None:
            return None
        key = (expression.pattern, expression.negated)
        matcher = _like_cache.get(key)
        if matcher is None:
            matcher = compile_like(expression.pattern, expression.negated)
            _like_cache[key] = matcher
        return matcher(value)
    if isinstance(expression, E.InListExpr):
        value = eval_row(expression.operand, row, ctx)
        if value is None:
            return None
        hit = value in expression.values
        return (not hit) if expression.negated else hit
    if isinstance(expression, E.CastExpr):
        value = eval_row(expression.operand, row, ctx)
        return _cast_scalar(value, expression.operand.type, expression.type)
    if isinstance(expression, E.ScalarSubqueryExpr):
        return ctx.scalar_subquery(expression, row)
    if isinstance(expression, E.ExistsSubqueryExpr):
        return ctx.exists_subquery(expression, row)
    raise DatabaseError(f"cannot evaluate {type(expression).__name__} per row")


def _cast_scalar(value, source: T.SQLType, target: T.SQLType):
    if value is None:
        return None
    if source.category == target.category and target.is_variable:
        return value
    cat_s, cat_t = source.category, target.category
    if cat_t == T.TypeCategory.FLOAT:
        if cat_s == T.TypeCategory.DECIMAL:
            return float(value) / 10**source.scale
        return float(value)
    if cat_t == T.TypeCategory.DECIMAL:
        if cat_s == T.TypeCategory.DECIMAL:
            if target.scale >= source.scale:
                return int(value) * 10 ** (target.scale - source.scale)
            return int(value) // 10 ** (source.scale - target.scale)
        if cat_s == T.TypeCategory.FLOAT:
            return round(float(value) * 10**target.scale)
        return int(value) * 10**target.scale
    if cat_t == T.TypeCategory.INTEGER:
        if cat_s == T.TypeCategory.DECIMAL:
            return int(value) // 10**source.scale
        if isinstance(value, float) and np.isnan(value):
            return None
        return int(value)
    if cat_t == T.TypeCategory.STRING:
        if cat_s == T.TypeCategory.DECIMAL:
            return str(source.from_storage(value))
        if cat_s == T.TypeCategory.DATE:
            return T.days_to_date(int(value)).isoformat()
        return str(value)
    if cat_t == T.TypeCategory.DATE and cat_s == T.TypeCategory.STRING:
        return T.date_to_days(value)
    raise DatabaseError(f"unsupported cast {source.name} -> {target.name}")
