"""Page-oriented persistence for the row store.

Records are packed into fixed 4 KiB slotted pages written sequentially per
table; a JSON catalog maps tables to their page ranges.  Commits write the
dirty tail and fsync, which is what makes row-store ingest disk-bound (the
paper's Figure 5 observation for SQLite).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

from repro.errors import StartupError

__all__ = ["PageFile", "PAGE_SIZE"]

PAGE_SIZE = 4096
_SLOT = struct.Struct("<I")


def pack_pages(records: list) -> list:
    """Pack byte records into page images (records never split: oversized
    records get a private page)."""
    pages: list = []
    current = bytearray()
    counts: list = []
    count = 0
    for record in records:
        need = _SLOT.size + len(record)
        if current and len(current) + need > PAGE_SIZE - 4:
            pages.append(bytes(current))
            counts.append(count)
            current = bytearray()
            count = 0
        current += _SLOT.pack(len(record)) + record
        count += 1
    if current:
        pages.append(bytes(current))
        counts.append(count)
    return [
        _SLOT.pack(c) + page for c, page in zip(counts, pages)
    ]


def unpack_pages(pages: list) -> list:
    """Inverse of :func:`pack_pages`."""
    records: list = []
    for page in pages:
        count = _SLOT.unpack_from(page, 0)[0]
        pos = _SLOT.size
        for _ in range(count):
            length = _SLOT.unpack_from(page, pos)[0]
            pos += _SLOT.size
            records.append(page[pos : pos + length])
            pos += length
    return records


class PageFile:
    """One database file holding all tables' pages plus a JSON header."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def write(self, tables: dict) -> None:
        """Persist {table_name: {"schema": ..., "records": [...]}}."""
        body = bytearray()
        header: dict = {"tables": {}}
        for name, content in tables.items():
            pages = pack_pages(content["records"])
            header["tables"][name] = {
                "schema": content["schema"],
                "offset": len(body),
                "npages": len(pages),
                "page_sizes": [len(p) for p in pages],
            }
            for page in pages:
                body += page
        header_bytes = json.dumps(header).encode("utf-8")
        with open(self.path, "wb") as handle:
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(header_bytes)
            handle.write(bytes(body))
            handle.flush()
            os.fsync(handle.fileno())

    def read(self) -> dict:
        """Load {table_name: {"schema": ..., "records": [...]}}."""
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise StartupError(f"cannot open database file: {exc}") from exc
        header_len = int.from_bytes(raw[:8], "little")
        try:
            header = json.loads(raw[8 : 8 + header_len])
        except json.JSONDecodeError as exc:
            raise StartupError(f"corrupt database file {self.path}") from exc
        body = raw[8 + header_len :]
        out: dict = {}
        for name, meta in header["tables"].items():
            pages = []
            pos = meta["offset"]
            for size in meta["page_sizes"]:
                pages.append(body[pos : pos + size])
                pos += size
            out[name] = {
                "schema": meta["schema"],
                "records": unpack_pages(pages),
            }
        return out
