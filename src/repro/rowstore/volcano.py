"""Volcano iterator executor over bound logical plans.

One Python generator per operator, one ``next()`` per tuple — the classic
iterator model of SQLite/PostgreSQL/MariaDB that the paper contrasts with
column-at-a-time execution.  Consumes the *same* optimized logical plans as
the columnar engine, so the performance difference measured by the
benchmarks is purely the execution model (plus the row-major storage).
"""

from __future__ import annotations

import itertools
import time

from repro.algebra import expr as E
from repro.algebra import nodes as N
from repro.errors import DatabaseError, QueryTimeoutError
from repro.rowstore.row_eval import eval_row
from repro.storage import types as T

__all__ = ["VolcanoContext", "open_plan", "run_plan"]

_CHECK_EVERY = 2048


class VolcanoContext:
    """Execution state: table access, deadline, correlation stack."""

    def __init__(self, database, timeout: float | None = None):
        self.database = database
        self.deadline = time.monotonic() + timeout if timeout else None
        self._outer_stack: list = []
        self._tick = 0

    def check(self) -> None:
        self._tick += 1
        if self._tick % _CHECK_EVERY == 0 and self.deadline is not None:
            if time.monotonic() > self.deadline:
                raise QueryTimeoutError("query exceeded its execution timeout")

    def outer_row(self) -> tuple:
        if not self._outer_stack:
            raise DatabaseError("outer reference outside a correlated subquery")
        return self._outer_stack[-1]

    def scalar_subquery(self, expression: E.ScalarSubqueryExpr, row: tuple):
        self._outer_stack.append(row)
        try:
            rows = list(itertools.islice(open_plan(expression.plan.plan, self), 2))
        finally:
            self._outer_stack.pop()
        if not rows:
            return None
        if len(rows) > 1:
            raise DatabaseError("scalar subquery returned more than one row")
        return rows[0][0]

    def exists_subquery(self, expression: E.ExistsSubqueryExpr, row: tuple):
        self._outer_stack.append(row)
        try:
            found = next(iter(open_plan(expression.plan.plan, self)), None)
        finally:
            self._outer_stack.pop()
        return (found is not None) != expression.negated


def run_plan(bound: N.BoundSelect, ctx: VolcanoContext) -> list:
    """Materialize a plan into a list of storage-domain row tuples."""
    return list(open_plan(bound.plan, ctx))


def open_plan(node: N.LogicalNode, ctx: VolcanoContext):
    """Build the iterator tree for a logical plan node."""
    if isinstance(node, N.Scan):
        return _scan(node, ctx)
    if isinstance(node, N.Filter):
        return _filter(node, ctx)
    if isinstance(node, N.Project):
        return _project(node, ctx)
    if isinstance(node, N.Join):
        return _join(node, ctx)
    if isinstance(node, N.SemiJoin):
        return _semijoin(node, ctx)
    if isinstance(node, N.Aggregate):
        return _aggregate(node, ctx)
    if isinstance(node, N.Sort):
        return _sort(node, ctx)
    if isinstance(node, N.TopN):
        rows = _sort(N.Sort(node.child, node.keys), ctx)
        return itertools.islice(rows, node.offset, node.offset + node.limit)
    if isinstance(node, N.Limit):
        child = open_plan(node.child, ctx)
        stop = None if node.limit is None else node.offset + node.limit
        return itertools.islice(child, node.offset, stop)
    if isinstance(node, N.Distinct):
        return _distinct(node, ctx)
    if isinstance(node, N.SetOp):
        return _setop(node, ctx)
    if type(node).__name__ == "_RenamedPlan":
        return open_plan(node.child, ctx)
    if type(node).__name__ == "_DualScan":
        return iter([()])
    raise DatabaseError(f"volcano cannot execute {type(node).__name__}")


def _scan(node: N.Scan, ctx: VolcanoContext):
    table = ctx.database.table(node.table_name)
    indexes = node.column_indexes
    for row in table.rows():
        ctx.check()
        yield tuple(row[i] for i in indexes)


def _filter(node: N.Filter, ctx: VolcanoContext):
    predicate = node.predicate
    for row in open_plan(node.child, ctx):
        ctx.check()
        if eval_row(predicate, row, ctx):
            yield row


def _project(node: N.Project, ctx: VolcanoContext):
    exprs = node.exprs
    for row in open_plan(node.child, ctx):
        ctx.check()
        yield tuple(eval_row(e, row, ctx) for e in exprs)


def _join(node: N.Join, ctx: VolcanoContext):
    # a LEFT JOIN keeps unmatched left rows, padded with NULLs; the ON
    # residual decides matching only — it never deletes a left row
    pad = (None,) * len(node.right.output) if node.kind == "left" else None
    if node.kind == "cross" or not node.left_keys:
        right_rows = list(open_plan(node.right, ctx))
        for left_row in open_plan(node.left, ctx):
            matched = False
            for right_row in right_rows:
                ctx.check()
                combined = left_row + right_row
                if node.residual is None or eval_row(node.residual, combined, ctx):
                    matched = True
                    yield combined
            if pad is not None and not matched:
                yield left_row + pad
        return
    # tuple-at-a-time hash join: dict build on the right side
    build: dict = {}
    for right_row in open_plan(node.right, ctx):
        ctx.check()
        key = tuple(eval_row(k, right_row, ctx) for k in node.right_keys)
        if any(v is None for v in key):
            continue
        build.setdefault(key, []).append(right_row)
    for left_row in open_plan(node.left, ctx):
        ctx.check()
        key = tuple(eval_row(k, left_row, ctx) for k in node.left_keys)
        matched = False
        if not any(v is None for v in key):
            for right_row in build.get(key, ()):
                combined = left_row + right_row
                if node.residual is None or eval_row(node.residual, combined, ctx):
                    matched = True
                    yield combined
        if pad is not None and not matched:
            yield left_row + pad


def _semijoin(node: N.SemiJoin, ctx: VolcanoContext):
    keys = set()
    right_count = 0
    right_has_null = False
    for right_row in open_plan(node.right, ctx):
        ctx.check()
        right_count += 1
        key = tuple(eval_row(k, right_row, ctx) for k in node.right_keys)
        if any(v is None for v in key):
            right_has_null = True
        else:
            keys.add(key)
    for left_row in open_plan(node.left, ctx):
        ctx.check()
        key = tuple(eval_row(k, left_row, ctx) for k in node.left_keys)
        key_null = any(v is None for v in key)
        matched = not key_null and key in keys
        if node.anti and node.null_aware:
            # NOT IN three-valued logic: empty right keeps everything,
            # a NULL anywhere keeps nothing, else keep the non-matches
            if right_count == 0 or not (
                right_has_null or key_null or matched
            ):
                yield left_row
            continue
        if matched != node.anti:
            yield left_row


def _aggregate(node: N.Aggregate, ctx: VolcanoContext):
    groups: dict = {}
    for row in open_plan(node.child, ctx):
        ctx.check()
        key = tuple(eval_row(g, row, ctx) for g in node.group_exprs)
        state = groups.get(key)
        if state is None:
            state = [_new_state(spec) for spec in node.aggregates]
            groups[key] = state
        for spec, acc in zip(node.aggregates, state):
            _accumulate(spec, acc, row, ctx)
    if not groups and not node.group_exprs:
        groups[()] = [_new_state(spec) for spec in node.aggregates]
    for key, state in groups.items():
        yield key + tuple(
            _finalize(spec, acc) for spec, acc in zip(node.aggregates, state)
        )


def _new_state(spec: E.AggSpec):
    if spec.func == "median":
        return []
    if spec.distinct:
        return set()
    # [count, sum, min, max]
    return [0, 0.0, None, None]


def _arg_number(spec: E.AggSpec, value):
    if value is None:
        return None
    if spec.arg is not None and spec.arg.type.category == T.TypeCategory.DECIMAL:
        return value / 10**spec.arg.type.scale
    return value


def _accumulate(spec: E.AggSpec, acc, row: tuple, ctx) -> None:
    if spec.filter is not None and not eval_row(spec.filter, row, ctx):
        # FILTER (WHERE ...): NULL counts as not-true, like WHERE
        return
    if spec.func == "count_star":
        acc[0] += 1
        return
    value = eval_row(spec.arg, row, ctx)
    if value is None:
        return
    if spec.func == "median":
        acc.append(_arg_number(spec, value))
        return
    if spec.distinct:
        acc.add(value)
        return
    acc[0] += 1
    if spec.func in ("sum", "avg"):
        acc[1] += _arg_number(spec, value)
    elif spec.func == "min":
        acc[2] = value if acc[2] is None or value < acc[2] else acc[2]
    elif spec.func == "max":
        acc[3] = value if acc[3] is None or value > acc[3] else acc[3]


def _finalize(spec: E.AggSpec, acc):
    if spec.func == "count_star":
        return acc[0]
    if spec.func == "median":
        if not acc:
            return None
        values = sorted(acc)
        mid = len(values) // 2
        if len(values) % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2.0
    if spec.distinct:
        if spec.func == "count":
            return len(acc)
        if not acc:
            return None
        if spec.func in ("min", "max"):
            return min(acc) if spec.func == "min" else max(acc)
        total = sum(_arg_number(spec, v) for v in acc)
        if spec.func == "sum":
            return _sum_result(spec, total)
        return total / len(acc)  # avg
    count = acc[0]
    if spec.func == "count":
        return count
    if count == 0:
        return None
    if spec.func == "sum":
        return _sum_result(spec, acc[1])
    if spec.func == "avg":
        return acc[1] / count
    if spec.func == "min":
        return acc[2]
    if spec.func == "max":
        return acc[3]
    raise DatabaseError(f"unknown aggregate {spec.func!r}")


def _sum_result(spec: E.AggSpec, total):
    if spec.type.category == T.TypeCategory.INTEGER:
        return int(total)
    return float(total)


def _sort(node: N.Sort, ctx: VolcanoContext):
    rows = list(open_plan(node.child, ctx))
    # stable multi-pass sort: apply keys last-to-first (each pass stable)
    for key in reversed(node.keys):
        expr, descending = key.expr, key.descending
        nulls_first = key.nulls_first if key.nulls_first is not None else True
        decorated = [(eval_row(expr, row, ctx), row) for row in rows]
        nulls = [row for value, row in decorated if value is None]
        rest = [(value, row) for value, row in decorated if value is not None]
        rest.sort(key=lambda pair: pair[0], reverse=descending)
        sorted_rows = [row for _, row in rest]
        rows = (nulls + sorted_rows) if nulls_first else (sorted_rows + nulls)
    return iter(rows)


def _distinct(node: N.Distinct, ctx: VolcanoContext):
    seen = set()
    for row in open_plan(node.child, ctx):
        ctx.check()
        if row not in seen:
            seen.add(row)
            yield row


def _setop(node: N.SetOp, ctx: VolcanoContext):
    left_rows = list(open_plan(node.left, ctx))
    right_rows = list(open_plan(node.right, ctx))
    if node.op == "union":
        combined = left_rows + right_rows
        if node.all:
            yield from combined
            return
        yield from dict.fromkeys(combined)
        return
    right_set = set(right_rows)
    if node.op == "except":
        kept = [r for r in dict.fromkeys(left_rows) if r not in right_set]
    else:  # intersect
        kept = [r for r in dict.fromkeys(left_rows) if r in right_set]
    yield from kept
