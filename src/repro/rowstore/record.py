"""Self-describing row record encoding (SQLite-style serial types).

A record is a header of per-column type tags followed by the value
payloads.  Values are kept in the *storage domain* shared with the bound
expression layer: dates as epoch days, decimals as scaled integers, so the
Volcano evaluator can compare them directly against bound constants.
"""

from __future__ import annotations

import struct

from repro.errors import DatabaseError

__all__ = ["encode_record", "decode_record"]

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BLOB = 4

_INT_STRUCT = struct.Struct("<q")
_FLOAT_STRUCT = struct.Struct("<d")
_LEN_STRUCT = struct.Struct("<I")


def encode_record(row: tuple) -> bytes:
    """Serialize one row (storage-domain Python values) to bytes."""
    tags = bytearray()
    payload = bytearray()
    for value in row:
        if value is None:
            tags.append(_TAG_NULL)
        elif isinstance(value, bool):
            tags.append(_TAG_INT)
            payload += _INT_STRUCT.pack(int(value))
        elif isinstance(value, int):
            tags.append(_TAG_INT)
            payload += _INT_STRUCT.pack(value)
        elif isinstance(value, float):
            tags.append(_TAG_FLOAT)
            payload += _FLOAT_STRUCT.pack(value)
        elif isinstance(value, str):
            tags.append(_TAG_TEXT)
            raw = value.encode("utf-8")
            payload += _LEN_STRUCT.pack(len(raw)) + raw
        elif isinstance(value, (bytes, bytearray)):
            tags.append(_TAG_BLOB)
            payload += _LEN_STRUCT.pack(len(value)) + bytes(value)
        else:
            raise DatabaseError(f"cannot encode value of type {type(value).__name__}")
    return bytes(len(tags).to_bytes(2, "little") + tags + payload)


def decode_record(raw: bytes) -> tuple:
    """Deserialize a record produced by :func:`encode_record`."""
    ncols = int.from_bytes(raw[:2], "little")
    tags = raw[2 : 2 + ncols]
    pos = 2 + ncols
    out = []
    for tag in tags:
        if tag == _TAG_NULL:
            out.append(None)
        elif tag == _TAG_INT:
            out.append(_INT_STRUCT.unpack_from(raw, pos)[0])
            pos += 8
        elif tag == _TAG_FLOAT:
            out.append(_FLOAT_STRUCT.unpack_from(raw, pos)[0])
            pos += 8
        elif tag == _TAG_TEXT:
            length = _LEN_STRUCT.unpack_from(raw, pos)[0]
            pos += 4
            out.append(raw[pos : pos + length].decode("utf-8"))
            pos += length
        elif tag == _TAG_BLOB:
            length = _LEN_STRUCT.unpack_from(raw, pos)[0]
            pos += 4
            out.append(bytes(raw[pos : pos + length]))
            pos += length
        else:
            raise DatabaseError(f"corrupt record: unknown tag {tag}")
    return tuple(out)
