"""B+tree keyed by rowid, holding encoded row records.

The shape of SQLite's table storage: every table is a B+tree whose keys
are rowids and whose leaves hold the row records.  Appends with monotonic
rowids fill rightmost leaves; scans walk the leaf chain in key order.
"""

from __future__ import annotations

from repro.errors import DatabaseError

__all__ = ["BPlusTree", "LEAF_CAPACITY"]

LEAF_CAPACITY = 64
INNER_CAPACITY = 64


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: list = []
        self.values: list = []
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: list = []  # separator keys: child[i] holds keys < keys[i]
        self.children: list = []


class BPlusTree:
    """A B+tree mapping integer rowids to byte records."""

    def __init__(self):
        self._root = _Leaf()
        self._first = self._root
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert one entry; duplicate keys are rejected."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert_into(self, node, key: int, value: bytes):
        if isinstance(node, _Leaf):
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise DatabaseError(f"duplicate rowid {key}")
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) > LEAF_CAPACITY:
                return self._split_leaf(node)
            return None
        idx = _bisect(node.keys, key)
        child_idx = idx if idx < len(node.keys) and key < node.keys[idx] else idx
        child_idx = min(idx, len(node.children) - 1)
        split = self._insert_into(node.children[child_idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right)
        if len(node.children) > INNER_CAPACITY:
            return self._split_inner(node)
        return None

    @staticmethod
    def _split_leaf(leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        return right.keys[0], right

    @staticmethod
    def _split_inner(inner: _Inner):
        mid = len(inner.children) // 2
        right = _Inner()
        sep = inner.keys[mid - 1]
        right.keys = inner.keys[mid:]
        right.children = inner.children[mid:]
        inner.keys = inner.keys[: mid - 1]
        inner.children = inner.children[:mid]
        return sep, right

    # -- lookup / iteration -------------------------------------------------------------

    def get(self, key: int) -> bytes | None:
        node = self._root
        while isinstance(node, _Inner):
            idx = _bisect_right(node.keys, key)
            node = node.children[idx]
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def delete(self, key: int) -> bool:
        """Remove one entry (leaves may underflow; rebalancing is lazy)."""
        node = self._root
        while isinstance(node, _Inner):
            idx = _bisect_right(node.keys, key)
            node = node.children[idx]
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.keys.pop(idx)
            node.values.pop(idx)
            self._size -= 1
            return True
        return False

    def scan(self):
        """Yield (rowid, record) pairs in key order — the leaf chain walk."""
        node = self._first
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def depth(self) -> int:
        depth = 1
        node = self._root
        while isinstance(node, _Inner):
            depth += 1
            node = node.children[0]
        return depth


def _bisect(keys: list, key: int) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list, key: int) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
