"""Abstract syntax tree node definitions for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "WindowSpec",
    "WindowFrame",
    "IsDistinctFrom",
    "CaseExpr",
    "Cast",
    "IsNull",
    "Like",
    "InList",
    "InSubquery",
    "Exists",
    "ScalarSubquery",
    "Between",
    "ExtractExpr",
    "IntervalLiteral",
    "SelectItem",
    "OrderItem",
    "TableRef",
    "BaseTable",
    "JoinRef",
    "SubqueryRef",
    "CommonTableExpr",
    "SelectStmt",
    "SetOpStmt",
    "CreateTable",
    "ColumnSpec",
    "DropTable",
    "CreateIndex",
    "DropIndex",
    "InsertStmt",
    "DeleteStmt",
    "UpdateStmt",
    "CopyFromStmt",
    "CopyToStmt",
    "CreateTableFrom",
    "TransactionStmt",
    "ExplainStmt",
    "Parameter",
    "PrepareStmt",
    "ExecuteStmt",
    "DeallocateStmt",
    "Statement",
]


class Expression:
    """Base class of all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean, NULL, or a typed literal.

    ``type_hint`` distinguishes e.g. ``DATE '1994-01-01'`` from a plain
    string; it holds the keyword (``"date"``/``"timestamp"``) or ``None``.
    """

    value: object
    type_hint: Optional[str] = None


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly qualified column reference ``[table.]name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Parameter(Expression):
    """A prepared-statement placeholder: ``?`` (positional) or ``$n``.

    ``index`` is zero-based; positional ``?`` markers are numbered left to
    right by the parser, ``$n`` spellings map to index ``n - 1`` and may
    repeat.
    """

    index: int


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``table.*`` in a select list or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary ``-`` or ``NOT``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class WindowFrame:
    """``ROWS|RANGE [BETWEEN] bound [AND bound]`` of an OVER clause.

    Bounds are tuples: ``("unbounded_preceding",)``, ``("preceding", n)``,
    ``("current_row",)``, ``("following", n)``, ``("unbounded_following",)``.
    """

    unit: str  # "rows" | "range"
    start: tuple
    end: tuple


@dataclass(frozen=True)
class WindowSpec:
    """The ``OVER (...)`` clause of a window function call."""

    partition_by: tuple = ()  # of Expression
    order_by: tuple = ()  # of OrderItem
    frame: Optional[WindowFrame] = None


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Function or aggregate invocation. ``distinct`` covers COUNT(DISTINCT x).

    ``filter_where`` holds the predicate of ``FILTER (WHERE ...)`` on an
    aggregate; ``over`` the :class:`WindowSpec` of a window function call.
    """

    name: str
    args: tuple
    distinct: bool = False
    filter_where: Optional[Expression] = None
    over: Optional[WindowSpec] = None


@dataclass(frozen=True)
class IsDistinctFrom(Expression):
    """``a IS [NOT] DISTINCT FROM b`` — null-safe (in)equality."""

    left: Expression
    right: Expression
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expression]
    whens: tuple  # of (condition, result) pairs
    else_result: Optional[Expression]


@dataclass(frozen=True)
class Cast(Expression):
    """``CAST(expr AS type)``; ``type_name`` is the raw DDL spelling."""

    operand: Expression
    type_name: str


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` (pattern restricted to an expression)."""

    operand: Expression
    pattern: Expression
    negated: bool = False
    escape: Optional[Expression] = None


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expression
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A subquery used as a scalar value (possibly correlated)."""

    subquery: "SelectStmt"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class ExtractExpr(Expression):
    """``EXTRACT(field FROM expr)`` — field in year/month/day."""

    unit: str
    operand: Expression


@dataclass(frozen=True)
class IntervalLiteral(Expression):
    """``INTERVAL 'n' unit`` — unit in day/month/year."""

    amount: int
    unit: str


# -- query structure -----------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list (expression plus optional alias)."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    descending: bool = False
    nulls_first: Optional[bool] = None


class TableRef:
    """Base class of FROM-clause items."""

    __slots__ = ()


@dataclass(frozen=True)
class BaseTable(TableRef):
    """A named table with optional alias."""

    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinRef(TableRef):
    """Explicit JOIN between two table references."""

    left: TableRef
    right: TableRef
    kind: str  # inner | left | right | full | cross
    condition: Optional[Expression] = None


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    """Derived table ``(SELECT ...) alias`` — also a set operation."""

    select: Union["SelectStmt", "SetOpStmt"]
    alias: str


@dataclass(frozen=True)
class CommonTableExpr:
    """One ``name [(columns)] AS (query)`` entry of a WITH clause."""

    name: str
    columns: tuple  # of str; empty = inherit the query's column names
    statement: Union["SelectStmt", "SetOpStmt"]


class Statement:
    """Base class of all statements."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectStmt(Statement):
    """A full SELECT query block."""

    items: tuple  # of SelectItem
    from_tables: tuple = ()  # of TableRef (comma list)
    where: Optional[Expression] = None
    group_by: tuple = ()
    having: Optional[Expression] = None
    order_by: tuple = ()  # of OrderItem
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: tuple = ()  # of CommonTableExpr (non-recursive WITH)


@dataclass(frozen=True)
class SetOpStmt(Statement):
    """``UNION [ALL] / EXCEPT / INTERSECT`` of two query blocks."""

    op: str
    left: Union[SelectStmt, "SetOpStmt"]
    right: Union[SelectStmt, "SetOpStmt"]
    all: bool = False
    order_by: tuple = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    ctes: tuple = ()  # of CommonTableExpr (non-recursive WITH)


@dataclass(frozen=True)
class ColumnSpec:
    """Column clause of CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple  # of ColumnSpec
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE [ORDER] INDEX name ON table (columns)``."""

    name: str
    table: str
    columns: tuple
    ordered: bool = False


@dataclass(frozen=True)
class DropIndex(Statement):
    name: str


@dataclass(frozen=True)
class InsertStmt(Statement):
    """INSERT INTO ... VALUES rows, or INSERT INTO ... SELECT."""

    table: str
    columns: tuple = ()  # empty = all columns in schema order
    rows: tuple = ()  # of tuples of Expression
    select: Optional[SelectStmt] = None


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: tuple  # of (column_name, Expression)
    where: Optional[Expression] = None


@dataclass(frozen=True)
class CopyFromStmt(Statement):
    """``COPY [n RECORDS] [OFFSET n] INTO tbl [(cols)] FROM src [options]``.

    ``path`` is ``None`` for ``FROM STDIN`` (data supplied out of band, e.g.
    streamed over the wire protocol).  ``limit``/``offset`` count CSV records;
    unlike MonetDB's 1-based ``OFFSET``, ours skips the first ``offset``
    records (SQL convention).  ``header`` of ``None`` means "no header" here
    but "auto-detect" in :class:`CreateTableFrom`.
    """

    table: str
    path: Optional[str]
    columns: tuple = ()  # empty = all columns in schema order
    delimiter: str = ","
    record_sep: str = "\n"
    quote: str = '"'
    null_string: str = ""
    best_effort: bool = False
    limit: Optional[int] = None
    offset: int = 0
    header: bool = False


@dataclass(frozen=True)
class CopyToStmt(Statement):
    """``COPY {tbl | (SELECT ...)} TO dst [options]``.

    Exactly one of ``table``/``select`` is set; ``path`` is ``None`` for
    ``TO STDOUT`` (the CSV text travels back on the result).
    """

    path: Optional[str]
    table: Optional[str] = None
    select: Optional[Statement] = None
    delimiter: str = ","
    record_sep: str = "\n"
    quote: str = '"'
    null_string: str = ""
    header: bool = False


@dataclass(frozen=True)
class CreateTableFrom(Statement):
    """``CREATE TABLE name FROM 'file.csv' [options]`` — infer schema + load.

    ``header`` of ``None`` auto-detects a header record from the file.
    """

    name: str
    path: str
    if_not_exists: bool = False
    delimiter: str = ","
    record_sep: str = "\n"
    quote: str = '"'
    null_string: str = ""
    best_effort: bool = False
    header: Optional[bool] = None


@dataclass(frozen=True)
class TransactionStmt(Statement):
    """BEGIN / COMMIT / ROLLBACK."""

    action: str


@dataclass(frozen=True)
class PrepareStmt(Statement):
    """``PREPARE name AS <statement>`` — register a named prepared statement."""

    name: str
    statement: Statement
    sql: str = ""  # original statement text, for sys.prepared


@dataclass(frozen=True)
class ExecuteStmt(Statement):
    """``EXECUTE name [(arg, ...)]`` — run a prepared statement."""

    name: str
    args: tuple = ()  # of Expression (must fold to constants)


@dataclass(frozen=True)
class DeallocateStmt(Statement):
    """``DEALLOCATE [PREPARE] name`` — drop a prepared statement."""

    name: str


@dataclass(frozen=True)
class ExplainStmt(Statement):
    """``EXPLAIN [ANALYZE] <statement>``.

    Plain EXPLAIN renders the bound plan and MAL program without running
    the query; EXPLAIN ANALYZE executes it with tracing on and renders the
    annotated instruction profile.
    """

    statement: Statement
    analyze: bool = False
