"""Hand-written SQL tokenizer."""

from __future__ import annotations

import decimal
import enum
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["TokenType", "Token", "Lexer", "KEYWORDS", "CONTEXTUAL_KEYWORDS"]


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"  # ? (value -1) or $n (value n-1, zero-based)
    EOF = "eof"


#: Reserved words recognized by the parser (case-insensitive).
KEYWORDS = frozenset(
    """
    select from where group by having order limit offset distinct all as
    and or not in is null like between exists case when then else end
    cast extract interval date time timestamp
    join inner left right full outer cross on using
    create drop table index if
    insert into values delete update set
    begin start transaction commit rollback work
    asc desc nulls first last
    escape explain analyze
    prepare execute deallocate
    true false
    primary key unique
    union except intersect
    """.split()
)

#: Words with special meaning only in specific positions (COPY grammar).
#: They are deliberately NOT reserved: the lexer emits them as IDENT tokens
#: and the parser matches them by value, so e.g. ``CREATE TABLE copy (...)``
#: and a column named ``records`` keep working.
CONTEXTUAL_KEYWORDS = frozenset(
    """
    copy to records delimiters best effort stdin stdout header
    """.split()
)

_TWO_CHAR_OPS = ("<>", "<=", ">=", "!=", "||")
_ONE_CHAR_OPS = "+-*/%=<>"
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str | int | float | decimal.Decimal
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


class Lexer:
    """Tokenizes SQL text; comments (``--`` and ``/* */``) are skipped."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def tokens(self) -> list[Token]:
        """Tokenize the entire input, ending with an EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type == TokenType.EOF:
                return out

    def _skip_whitespace_and_comments(self) -> None:
        text, length = self.text, self.length
        while self.pos < length:
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "-" and text[self.pos : self.pos + 2] == "--":
                end = text.find("\n", self.pos)
                self.pos = length if end < 0 else end + 1
            elif ch == "/" and text[self.pos : self.pos + 2] == "/*":
                end = text.find("*/", self.pos + 2)
                if end < 0:
                    raise ParseError("unterminated block comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= self.length:
            return Token(TokenType.EOF, "", self.pos)
        start = self.pos
        ch = self.text[start]

        if ch.isalpha() or ch == "_":
            return self._lex_word(start)
        if ch.isdigit() or (
            ch == "." and start + 1 < self.length and self.text[start + 1].isdigit()
        ):
            return self._lex_number(start)
        if ch == "'":
            return self._lex_string(start)
        if ch == '"':
            return self._lex_quoted_ident(start)
        if ch == "?":
            self.pos += 1
            return Token(TokenType.PARAM, -1, start)
        if ch == "$":
            return self._lex_dollar_param(start)
        two = self.text[start : start + 2]
        if two in _TWO_CHAR_OPS:
            self.pos += 2
            return Token(TokenType.OPERATOR, two, start)
        if ch in _ONE_CHAR_OPS:
            self.pos += 1
            return Token(TokenType.OPERATOR, ch, start)
        if ch in _PUNCT:
            self.pos += 1
            return Token(TokenType.PUNCT, ch, start)
        raise ParseError(f"unexpected character {ch!r}", start)

    def _lex_word(self, start: int) -> Token:
        pos = start
        text = self.text
        while pos < self.length and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        self.pos = pos
        word = text[start:pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start)
        return Token(TokenType.IDENT, lowered, start)

    def _lex_dollar_param(self, start: int) -> Token:
        """``$n`` numbered placeholder (1-based in SQL, 0-based in tokens)."""
        pos = start + 1
        text = self.text
        while pos < self.length and text[pos].isdigit():
            pos += 1
        if pos == start + 1:
            raise ParseError("expected a digit after '$'", start)
        self.pos = pos
        number = int(text[start + 1 : pos])
        if number < 1:
            raise ParseError("parameter numbers start at $1", start)
        return Token(TokenType.PARAM, number - 1, start)

    def _lex_quoted_ident(self, start: int) -> Token:
        end = self.text.find('"', start + 1)
        if end < 0:
            raise ParseError("unterminated quoted identifier", start)
        self.pos = end + 1
        return Token(TokenType.IDENT, self.text[start + 1 : end], start)

    def _lex_number(self, start: int) -> Token:
        pos = start
        text, length = self.text, self.length
        seen_dot = seen_exp = False
        while pos < length:
            ch = text[pos]
            if ch.isdigit():
                pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                pos += 1
            elif ch in "eE" and not seen_exp and pos > start:
                nxt = text[pos + 1 : pos + 2]
                if nxt.isdigit() or nxt in "+-":
                    seen_exp = True
                    pos += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        self.pos = pos
        literal = text[start:pos]
        if seen_exp:
            value = float(literal)
        elif seen_dot:
            # Fractional literals stay exact so the binder can type them as
            # DECIMAL; 0.1 must not become the nearest binary double.
            value = decimal.Decimal(literal)
        else:
            value = int(literal)
        return Token(TokenType.NUMBER, value, start)

    def _lex_string(self, start: int) -> Token:
        pos = start + 1
        text, length = self.text, self.length
        chunks: list[str] = []
        while pos < length:
            ch = text[pos]
            if ch == "'":
                if text[pos + 1 : pos + 2] == "'":  # escaped quote
                    chunks.append("'")
                    pos += 2
                    continue
                self.pos = pos + 1
                return Token(TokenType.STRING, "".join(chunks), start)
            chunks.append(ch)
            pos += 1
        raise ParseError("unterminated string literal", start)
