"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees."""

from __future__ import annotations

import dataclasses

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Lexer, Token, TokenType

__all__ = ["Parser", "parse", "parse_one", "parse_expression"]

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_DELIMITER_ESCAPES = {"\\n": "\n", "\\t": "\t", "\\r": "\r", "\\\\": "\\"}


def _unescape_delimiter(text: str) -> str:
    """Decode ``\\n``/``\\t``/``\\r``/``\\\\`` in DELIMITERS strings.

    SQL string literals keep backslashes verbatim, but ``DELIMITERS '|','\\n'``
    obviously means a newline record separator (MonetDB behaves the same way).
    """
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        pair = text[i : i + 2]
        if pair in _DELIMITER_ESCAPES:
            out.append(_DELIMITER_ESCAPES[pair])
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)
_INTERVAL_UNITS = {"day", "month", "year"}
_EXTRACT_UNITS = {"year", "month", "day"}


def parse(text: str) -> list[ast.Statement]:
    """Parse SQL text into a list of statements (``;`` separated)."""
    return Parser(text).parse_statements()


def parse_one(text: str) -> ast.Statement:
    """Parse exactly one statement."""
    statements = parse(text)
    if len(statements) != 1:
        raise ParseError(f"expected a single statement, got {len(statements)}")
    return statements[0]


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and index DDL)."""
    parser = Parser(text)
    expr = parser._expression()
    parser._expect_eof()
    return expr


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = Lexer(text).tokens()
        self._pos = 0
        self._param_seq = 0  # next index handed to a positional '?'

    # -- token plumbing ---------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        token = self._current
        if token.type == TokenType.KEYWORD and token.value in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(
                f"expected {word.upper()!r}, found {self._current.value!r}",
                self._current.position,
            )

    def _accept_punct(self, ch: str) -> bool:
        token = self._current
        if token.type == TokenType.PUNCT and token.value == ch:
            self._advance()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        if not self._accept_punct(ch):
            raise ParseError(
                f"expected {ch!r}, found {self._current.value!r}",
                self._current.position,
            )

    def _accept_operator(self, *ops: str) -> str | None:
        token = self._current
        if token.type == TokenType.OPERATOR and token.value in ops:
            self._advance()
            return token.value
        return None

    def _accept_word(self, *words: str) -> bool:
        """Accept a contextual keyword, lexed as a plain identifier."""
        token = self._current
        if token.type == TokenType.IDENT and token.value in words:
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise ParseError(
                f"expected {word.upper()!r}, found {self._current.value!r}",
                self._current.position,
            )

    def _expect_ident(self) -> str:
        token = self._current
        if token.type != TokenType.IDENT:
            raise ParseError(
                f"expected identifier, found {token.value!r}", token.position
            )
        self._advance()
        return str(token.value)

    def _expect_eof(self) -> None:
        if self._current.type != TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )

    # -- statements ---------------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while True:
            while self._accept_punct(";"):
                pass
            if self._current.type == TokenType.EOF:
                break
            statements.append(self._statement())
            if self._current.type != TokenType.EOF:
                self._expect_punct(";")
        if not statements:
            raise ParseError("empty statement")
        return statements

    def _statement(self) -> ast.Statement:
        token = self._current
        if token.type == TokenType.IDENT and token.value == "copy":
            # COPY is a contextual keyword: reserved only in statement-head
            # position, so tables/columns named "copy" keep working.
            return self._copy_statement()
        if token.type == TokenType.IDENT and token.value == "with":
            # WITH is likewise contextual: only a statement (or derived
            # table) head can start a CTE list.
            return self._query_statement()
        if token.type != TokenType.KEYWORD:
            raise ParseError(
                f"expected a statement, found {token.value!r}", token.position
            )
        word = token.value
        if word == "select" or (word == "(" and False):
            return self._query_statement()
        if word == "create":
            return self._create_statement()
        if word == "drop":
            return self._drop_statement()
        if word == "insert":
            return self._insert_statement()
        if word == "delete":
            return self._delete_statement()
        if word == "update":
            return self._update_statement()
        if word == "explain":
            self._advance()
            analyze = self._accept_keyword("analyze")
            return ast.ExplainStmt(self._statement(), analyze=analyze)
        if word == "prepare":
            return self._prepare_statement()
        if word == "execute":
            return self._execute_statement()
        if word == "deallocate":
            self._advance()
            self._accept_keyword("prepare")
            return ast.DeallocateStmt(self._expect_ident())
        if word in ("begin", "start"):
            self._advance()
            self._accept_keyword("transaction", "work")
            return ast.TransactionStmt("begin")
        if word == "commit":
            self._advance()
            self._accept_keyword("transaction", "work")
            return ast.TransactionStmt("commit")
        if word == "rollback":
            self._advance()
            self._accept_keyword("transaction", "work")
            return ast.TransactionStmt("rollback")
        raise ParseError(f"unsupported statement {word!r}", token.position)

    # -- COPY (bulk ingest / export) ---------------------------------------------------

    def _copy_statement(self) -> ast.Statement:
        """``COPY [n RECORDS] [OFFSET n] INTO t FROM src [opts]`` and
        ``COPY {t | (SELECT ...)} TO dst [opts]``."""
        self._expect_word("copy")
        limit: int | None = None
        offset = 0
        if self._current.type == TokenType.NUMBER:
            limit = self._int_literal("COPY n RECORDS")
            self._expect_word("records")
        if self._accept_keyword("offset"):
            offset = self._int_literal("COPY OFFSET")
        if self._accept_keyword("into"):
            table = self._table_name()
            columns: list[str] = []
            if self._accept_punct("("):
                columns.append(self._expect_ident())
                while self._accept_punct(","):
                    columns.append(self._expect_ident())
                self._expect_punct(")")
            self._expect_keyword("from")
            path = self._copy_endpoint("stdin")
            opts = self._copy_options()
            return ast.CopyFromStmt(
                table,
                path,
                tuple(columns),
                delimiter=opts["delimiter"],
                record_sep=opts["record_sep"],
                quote=opts["quote"],
                null_string=opts["null_string"],
                best_effort=opts["best_effort"],
                limit=limit,
                offset=offset,
                header=opts["header"],
            )
        if limit is not None or offset:
            raise ParseError(
                "n RECORDS / OFFSET only apply to COPY INTO",
                self._current.position,
            )
        if self._accept_punct("("):
            select: ast.Statement | None = self._query_statement()
            self._expect_punct(")")
            table = None
        else:
            select = None
            table = self._table_name()
        self._expect_word("to")
        path = self._copy_endpoint("stdout")
        opts = self._copy_options()
        if opts["best_effort"]:
            raise ParseError(
                "BEST EFFORT only applies to COPY INTO", self._current.position
            )
        return ast.CopyToStmt(
            path,
            table,
            select,
            delimiter=opts["delimiter"],
            record_sep=opts["record_sep"],
            quote=opts["quote"],
            null_string=opts["null_string"],
            header=opts["header"],
        )

    def _copy_endpoint(self, stream_word: str) -> str | None:
        """A file path string, or STDIN/STDOUT (returned as ``None``)."""
        token = self._current
        if token.type == TokenType.STRING:
            self._advance()
            return str(token.value)
        if token.type == TokenType.IDENT and token.value == stream_word:
            self._advance()
            return None
        raise ParseError(
            f"expected a file path string or {stream_word.upper()}",
            token.position,
        )

    def _copy_options(self) -> dict:
        opts = {
            "delimiter": ",",
            "record_sep": "\n",
            "quote": '"',
            "null_string": "",
            "best_effort": False,
            "header": False,
        }
        while True:
            if self._accept_word("delimiters"):
                opts["delimiter"] = self._delimiter_string()
                if self._accept_punct(","):
                    opts["record_sep"] = self._delimiter_string()
                    if self._accept_punct(","):
                        opts["quote"] = self._delimiter_string()
            elif self._accept_keyword("null"):
                self._expect_keyword("as")
                token = self._current
                if token.type != TokenType.STRING:
                    raise ParseError(
                        "NULL AS requires a string literal", token.position
                    )
                self._advance()
                opts["null_string"] = str(token.value)
            elif self._accept_word("best"):
                self._expect_word("effort")
                opts["best_effort"] = True
            elif self._accept_word("header"):
                opts["header"] = True
            else:
                return opts

    def _delimiter_string(self) -> str:
        token = self._current
        if token.type != TokenType.STRING:
            raise ParseError("expected a delimiter string", token.position)
        self._advance()
        return _unescape_delimiter(str(token.value))

    # -- prepared statements ----------------------------------------------------------

    def _prepare_statement(self) -> ast.PrepareStmt:
        """``PREPARE name AS <statement>`` (statement text is captured)."""
        self._expect_keyword("prepare")
        name = self._expect_ident()
        self._expect_keyword("as")
        start = self._current.position
        inner = self._statement()
        if isinstance(inner, (ast.PrepareStmt, ast.ExecuteStmt,
                              ast.DeallocateStmt, ast.TransactionStmt)):
            raise ParseError("cannot PREPARE this statement kind", start)
        end = self._current.position
        sql = self._text[start:end].strip().rstrip(";").strip()
        return ast.PrepareStmt(name, inner, sql)

    def _execute_statement(self) -> ast.ExecuteStmt:
        """``EXECUTE name [(arg, ...)]`` with constant arguments."""
        self._expect_keyword("execute")
        name = self._expect_ident()
        args: list[ast.Expression] = []
        if self._accept_punct("("):
            if not self._accept_punct(")"):
                args.append(self._expression())
                while self._accept_punct(","):
                    args.append(self._expression())
                self._expect_punct(")")
        return ast.ExecuteStmt(name, tuple(args))

    # -- SELECT / set operations -----------------------------------------------------

    def _query_statement(self) -> ast.Statement:
        """A query possibly combined with UNION/EXCEPT/INTERSECT.

        Branch blocks are parsed without trailing ORDER BY/LIMIT/OFFSET:
        those clauses bind to the whole set-op result (SQL standard), not
        to the last branch.  A leading ``WITH`` clause attaches its CTEs
        to the whole statement.
        """
        ctes = self._with_clause()
        left: ast.Statement = self._select_block(parse_trailing=False)
        while self._current.type == TokenType.KEYWORD and self._current.value in (
            "union",
            "except",
            "intersect",
        ):
            op = str(self._advance().value)
            all_flag = self._accept_keyword("all")
            right = self._select_block(parse_trailing=False)
            left = ast.SetOpStmt(op, left, right, all=all_flag)
        order_by, limit, offset = self._trailing_order_limit()
        if isinstance(left, ast.SetOpStmt):
            if order_by or limit is not None or offset is not None:
                left = ast.SetOpStmt(
                    left.op,
                    left.left,
                    left.right,
                    left.all,
                    tuple(order_by),
                    limit,
                    offset,
                )
        elif order_by or limit is not None or offset is not None:
            left = dataclasses.replace(
                left, order_by=tuple(order_by), limit=limit, offset=offset
            )
        if ctes:
            left = dataclasses.replace(left, ctes=ctes)
        return left

    def _with_clause(self) -> tuple:
        """``WITH name [(cols)] AS (query), ...`` — non-recursive CTEs."""
        if not self._accept_word("with"):
            return ()
        if self._accept_word("recursive"):
            raise ParseError(
                "recursive CTEs are not supported", self._current.position
            )
        ctes: list[ast.CommonTableExpr] = []
        while True:
            name = self._expect_ident().lower()
            columns: list[str] = []
            if self._accept_punct("("):
                columns.append(self._expect_ident())
                while self._accept_punct(","):
                    columns.append(self._expect_ident())
                self._expect_punct(")")
            self._expect_keyword("as")
            self._expect_punct("(")
            body = self._query_statement()
            self._expect_punct(")")
            ctes.append(ast.CommonTableExpr(name, tuple(columns), body))
            if not self._accept_punct(","):
                return tuple(ctes)

    def _select_block(self, parse_trailing: bool = True) -> ast.SelectStmt:
        self._expect_keyword("select")
        distinct = False
        if self._accept_keyword("distinct"):
            distinct = True
        else:
            self._accept_keyword("all")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        from_tables: list[ast.TableRef] = []
        where = having = None
        group_by: list[ast.Expression] = []
        if self._accept_keyword("from"):
            from_tables.append(self._table_ref())
            while self._accept_punct(","):
                from_tables.append(self._table_ref())
        if self._accept_keyword("where"):
            where = self._expression()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expression())
            while self._accept_punct(","):
                group_by.append(self._expression())
        if self._accept_keyword("having"):
            having = self._expression()
        if parse_trailing:
            order_by, limit, offset = self._trailing_order_limit()
        else:
            order_by, limit, offset = [], None, None
        return ast.SelectStmt(
            items=tuple(items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _trailing_order_limit(self):
        order_by: list[ast.OrderItem] = []
        limit = offset = None
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        if self._accept_keyword("limit"):
            limit = self._int_literal("LIMIT")
        if self._accept_keyword("offset"):
            offset = self._int_literal("OFFSET")
        return order_by, limit, offset

    def _int_literal(self, clause: str) -> int:
        token = self._current
        if token.type != TokenType.NUMBER or not isinstance(token.value, int):
            raise ParseError(f"{clause} requires an integer", token.position)
        self._advance()
        return token.value

    def _select_item(self) -> ast.SelectItem:
        if self._current.type == TokenType.OPERATOR and self._current.value == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._expression()
        alias = self._optional_alias()
        return ast.SelectItem(expr, alias)

    def _optional_alias(self) -> str | None:
        if self._accept_keyword("as"):
            return self._expect_ident()
        if self._current.type == TokenType.IDENT:
            return self._expect_ident()
        return None

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        nulls_first = None
        if self._accept_keyword("nulls"):
            if self._accept_keyword("first"):
                nulls_first = True
            else:
                self._expect_keyword("last")
                nulls_first = False
        return ast.OrderItem(expr, descending, nulls_first)

    # -- FROM clause ---------------------------------------------------------------

    def _table_ref(self) -> ast.TableRef:
        left = self._table_primary()
        while True:
            kind = self._join_kind()
            if kind is None:
                return left
            right = self._table_primary()
            condition = None
            if kind != "cross" and self._accept_keyword("on"):
                condition = self._expression()
            left = ast.JoinRef(left, right, kind, condition)

    def _join_kind(self) -> str | None:
        token = self._current
        if token.type != TokenType.KEYWORD:
            return None
        if token.value == "join":
            self._advance()
            return "inner"
        if token.value == "inner":
            self._advance()
            self._expect_keyword("join")
            return "inner"
        if token.value in ("left", "right", "full"):
            kind = str(token.value)
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return kind
        if token.value == "cross":
            self._advance()
            self._expect_keyword("join")
            return "cross"
        return None

    def _table_primary(self) -> ast.TableRef:
        if self._accept_punct("("):
            select = self._query_statement()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return ast.SubqueryRef(select, alias)
        name = self._expect_ident()
        if self._accept_punct("."):  # qualified reference: schema.table
            name = f"{name}.{self._expect_ident()}"
        alias = self._optional_alias()
        return ast.BaseTable(name, alias)

    # -- expressions ------------------------------------------------------------------

    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        while True:
            op = self._accept_operator(*_COMPARISON_OPS)
            if op is not None:
                op = "<>" if op == "!=" else op
                left = ast.BinaryOp(op, left, self._additive())
                continue
            token = self._current
            if token.type != TokenType.KEYWORD:
                return left
            if token.value == "is":
                self._advance()
                negated = self._accept_keyword("not")
                if self._accept_keyword("distinct"):
                    self._expect_keyword("from")
                    right = self._additive()
                    left = ast.IsDistinctFrom(left, right, negated)
                else:
                    self._expect_keyword("null")
                    left = ast.IsNull(left, negated)
                continue
            negated = False
            if token.value == "not" and self._peek().type == TokenType.KEYWORD:
                follower = self._peek().value
                if follower in ("like", "in", "between"):
                    self._advance()
                    negated = True
                    token = self._current
            if token.value == "like":
                self._advance()
                pattern = self._additive()
                escape = None
                if self._accept_keyword("escape"):
                    escape = self._additive()
                left = ast.Like(left, pattern, negated, escape)
                continue
            if token.value == "between":
                self._advance()
                low = self._additive()
                self._expect_keyword("and")
                high = self._additive()
                left = ast.Between(left, low, high, negated)
                continue
            if token.value == "in":
                self._advance()
                self._expect_punct("(")
                if self._current.is_keyword("select"):
                    subquery = self._select_block()
                    self._expect_punct(")")
                    left = ast.InSubquery(left, subquery, negated)
                else:
                    items = [self._expression()]
                    while self._accept_punct(","):
                        items.append(self._expression())
                    self._expect_punct(")")
                    left = ast.InList(left, tuple(items), negated)
                continue
            return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._unary())

    def _unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._current

        if token.type == TokenType.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type == TokenType.PARAM:
            self._advance()
            if token.value == -1:  # positional '?': number left to right
                index = self._param_seq
                self._param_seq += 1
            else:
                index = int(token.value)
            return ast.Parameter(index)

        if token.type == TokenType.KEYWORD:
            return self._keyword_primary(token)

        if token.type == TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._current.is_keyword("select"):
                subquery = self._select_block()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self._expression()
            self._expect_punct(")")
            return expr

        if token.type == TokenType.IDENT:
            return self._ident_primary()

        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _keyword_primary(self, token: Token) -> ast.Expression:
        word = token.value
        if word == "null":
            self._advance()
            return ast.Literal(None)
        if word in ("true", "false"):
            self._advance()
            return ast.Literal(word == "true")
        if word in ("date", "time", "timestamp"):
            if self._peek().type == TokenType.STRING:
                self._advance()
                literal = self._advance()
                return ast.Literal(literal.value, type_hint=str(word))
            raise ParseError(f"expected string after {word.upper()}", token.position)
        if word == "interval":
            self._advance()
            amount_token = self._advance()
            if amount_token.type == TokenType.STRING:
                amount = int(str(amount_token.value))
            elif amount_token.type == TokenType.NUMBER and isinstance(
                amount_token.value, int
            ):
                amount = amount_token.value
            else:
                raise ParseError("INTERVAL requires an integer amount", token.position)
            unit_token = self._advance()
            unit = str(unit_token.value).lower()
            if unit not in _INTERVAL_UNITS:
                raise ParseError(f"unknown interval unit {unit!r}", unit_token.position)
            return ast.IntervalLiteral(amount, unit)
        if word == "case":
            return self._case_expression()
        if word == "cast":
            self._advance()
            self._expect_punct("(")
            operand = self._expression()
            self._expect_keyword("as")
            type_name = self._type_name()
            self._expect_punct(")")
            return ast.Cast(operand, type_name)
        if word == "extract":
            self._advance()
            self._expect_punct("(")
            unit_token = self._advance()
            unit = str(unit_token.value).lower()
            if unit not in _EXTRACT_UNITS:
                raise ParseError(f"unknown EXTRACT field {unit!r}", unit_token.position)
            self._expect_keyword("from")
            operand = self._expression()
            self._expect_punct(")")
            return ast.ExtractExpr(unit, operand)
        if word == "exists":
            self._advance()
            self._expect_punct("(")
            subquery = self._select_block()
            self._expect_punct(")")
            return ast.Exists(subquery)
        if word == "not":
            self._advance()
            return ast.UnaryOp("not", self._not_expr())
        raise ParseError(f"unexpected keyword {word!r}", token.position)

    def _case_expression(self) -> ast.Expression:
        self._expect_keyword("case")
        operand = None
        if not self._current.is_keyword("when"):
            operand = self._expression()
        whens = []
        while self._accept_keyword("when"):
            condition = self._expression()
            self._expect_keyword("then")
            result = self._expression()
            whens.append((condition, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self._current.position)
        else_result = None
        if self._accept_keyword("else"):
            else_result = self._expression()
        self._expect_keyword("end")
        return ast.CaseExpr(operand, tuple(whens), else_result)

    def _ident_primary(self) -> ast.Expression:
        name = self._expect_ident()
        # function call?
        if self._current.type == TokenType.PUNCT and self._current.value == "(":
            self._advance()
            distinct = self._accept_keyword("distinct")
            args: list[ast.Expression] = []
            if not (
                self._current.type == TokenType.PUNCT and self._current.value == ")"
            ):
                if (
                    self._current.type == TokenType.OPERATOR
                    and self._current.value == "*"
                ):
                    self._advance()
                    args.append(ast.Star())
                else:
                    args.append(self._expression())
                    while self._accept_punct(","):
                        args.append(self._expression())
            self._expect_punct(")")
            filter_where = None
            if self._contextual_clause("filter"):
                self._expect_punct("(")
                self._expect_keyword("where")
                filter_where = self._expression()
                self._expect_punct(")")
            over = None
            if self._contextual_clause("over"):
                over = self._over_spec()
            return ast.FunctionCall(
                name, tuple(args), distinct, filter_where, over
            )
        # qualified column or table.*
        if self._current.type == TokenType.PUNCT and self._current.value == ".":
            return self._qualified_ident(name)
        return ast.ColumnRef(name)

    def _contextual_clause(self, word: str) -> bool:
        """Accept contextual ``FILTER``/``OVER`` only when ``(`` follows.

        Bare ``count(*) filter`` must keep meaning a column alias named
        ``filter`` — the paren lookahead disambiguates.
        """
        if (
            self._current.type == TokenType.IDENT
            and self._current.value == word
            and self._peek().type == TokenType.PUNCT
            and self._peek().value == "("
        ):
            self._advance()
            return True
        return False

    def _over_spec(self) -> ast.WindowSpec:
        """``( [PARTITION BY ...] [ORDER BY ...] [frame] )``."""
        self._expect_punct("(")
        partition: list[ast.Expression] = []
        if self._accept_word("partition"):
            self._expect_keyword("by")
            partition.append(self._expression())
            while self._accept_punct(","):
                partition.append(self._expression())
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        frame = None
        if self._current.type == TokenType.IDENT and self._current.value in (
            "rows",
            "range",
        ):
            frame = self._frame_spec()
        self._expect_punct(")")
        return ast.WindowSpec(tuple(partition), tuple(order_by), frame)

    def _frame_spec(self) -> ast.WindowFrame:
        unit = "rows" if self._accept_word("rows") else "range"
        if unit == "range":
            self._expect_word("range")
        if self._accept_keyword("between"):
            start = self._frame_bound()
            self._expect_keyword("and")
            end = self._frame_bound()
        else:
            start = self._frame_bound()
            end = ("current_row",)
        return ast.WindowFrame(unit, start, end)

    def _frame_bound(self) -> tuple:
        if self._accept_word("unbounded"):
            if self._accept_word("preceding"):
                return ("unbounded_preceding",)
            self._expect_word("following")
            return ("unbounded_following",)
        if self._accept_word("current"):
            self._expect_word("row")
            return ("current_row",)
        n = self._int_literal("window frame bound")
        if self._accept_word("preceding"):
            return ("preceding", n)
        self._expect_word("following")
        return ("following", n)

    def _qualified_ident(self, name: str) -> ast.Expression:
        """``table.column`` or ``table.*`` after the leading ``.``."""
        self._advance()
        if self._current.type == TokenType.OPERATOR and self._current.value == "*":
            self._advance()
            return ast.Star(table=name)
        column = self._expect_ident()
        return ast.ColumnRef(column, table=name)

    def _type_name(self) -> str:
        """Parse a type spelling for CAST/DDL, e.g. ``decimal(15, 2)``."""
        token = self._advance()
        if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError(f"expected a type name, found {token.value!r}")
        name = str(token.value)
        if name.lower() == "double" and self._current.type == TokenType.IDENT:
            if self._current.value == "precision":
                self._advance()
        if self._current.type == TokenType.PUNCT and self._current.value == "(":
            self._advance()
            parts = [str(self._advance().value)]
            while self._accept_punct(","):
                parts.append(str(self._advance().value))
            self._expect_punct(")")
            name = f"{name}({','.join(parts)})"
        return name

    # -- DDL -------------------------------------------------------------------------

    def _create_statement(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            return self._create_table()
        ordered = self._accept_keyword("order")
        if self._accept_keyword("index") or (
            self._current.type == TokenType.IDENT and self._current.value == "index"
        ):
            return self._create_index(ordered)
        raise ParseError(
            f"unsupported CREATE {self._current.value!r}", self._current.position
        )

    def _create_table(self) -> ast.Statement:
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        name = self._expect_ident()
        if self._accept_keyword("from"):
            # CREATE TABLE name FROM 'file.csv' [options]: infer the schema
            # from the file contents, then bulk load it.
            token = self._current
            if token.type != TokenType.STRING:
                raise ParseError(
                    "CREATE TABLE ... FROM requires a file path string",
                    token.position,
                )
            self._advance()
            opts = self._copy_options()
            return ast.CreateTableFrom(
                name,
                str(token.value),
                if_not_exists,
                delimiter=opts["delimiter"],
                record_sep=opts["record_sep"],
                quote=opts["quote"],
                null_string=opts["null_string"],
                best_effort=opts["best_effort"],
                # explicit HEADER forces it; otherwise auto-detect from data
                header=True if opts["header"] else None,
            )
        self._expect_punct("(")
        columns: list[ast.ColumnSpec] = []
        while True:
            if self._accept_keyword("primary"):
                self._expect_keyword("key")
                self._expect_punct("(")
                while not self._accept_punct(")"):
                    self._advance()
            elif self._accept_keyword("unique"):
                self._expect_punct("(")
                while not self._accept_punct(")"):
                    self._advance()
            else:
                colname = self._expect_ident()
                type_name = self._type_name()
                not_null = False
                while True:
                    if self._accept_keyword("not"):
                        self._expect_keyword("null")
                        not_null = True
                    elif self._accept_keyword("primary"):
                        self._expect_keyword("key")
                        not_null = True
                    elif self._accept_keyword("null"):
                        pass
                    else:
                        break
                columns.append(ast.ColumnSpec(colname, type_name, not_null))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def _table_name(self) -> str:
        """A possibly schema-qualified table name (``sys.queries``)."""
        name = self._expect_ident()
        if self._accept_punct("."):
            name = f"{name}.{self._expect_ident()}"
        return name

    def _create_index(self, ordered: bool) -> ast.CreateIndex:
        name = self._expect_ident()
        if not self._accept_keyword("on"):
            raise ParseError(
                "expected ON in CREATE INDEX", self._current.position
            )
        table = self._table_name()
        self._expect_punct("(")
        columns = [self._expect_ident()]
        while self._accept_punct(","):
            columns.append(self._expect_ident())
        self._expect_punct(")")
        return ast.CreateIndex(name, table, tuple(columns), ordered)

    def _drop_statement(self) -> ast.Statement:
        self._expect_keyword("drop")
        if self._accept_keyword("table"):
            if_exists = False
            if self._accept_keyword("if"):
                self._expect_keyword("exists")
                if_exists = True
            return ast.DropTable(self._table_name(), if_exists)
        if self._accept_keyword("index") or (
            self._current.type == TokenType.IDENT and self._current.value == "index"
        ):
            if self._current.value == "index":
                self._advance()
            return ast.DropIndex(self._expect_ident())
        raise ParseError(
            f"unsupported DROP {self._current.value!r}", self._current.position
        )

    # -- DML -------------------------------------------------------------------------

    def _insert_statement(self) -> ast.InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._table_name()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        if self._accept_keyword("values"):
            rows = [self._value_row()]
            while self._accept_punct(","):
                rows.append(self._value_row())
            return ast.InsertStmt(table, tuple(columns), tuple(rows))
        if self._current.is_keyword("select"):
            select = self._select_block()
            return ast.InsertStmt(table, tuple(columns), select=select)
        raise ParseError(
            "expected VALUES or SELECT in INSERT", self._current.position
        )

    def _value_row(self) -> tuple:
        self._expect_punct("(")
        values = [self._expression()]
        while self._accept_punct(","):
            values.append(self._expression())
        self._expect_punct(")")
        return tuple(values)

    def _delete_statement(self) -> ast.DeleteStmt:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._table_name()
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        return ast.DeleteStmt(table, where)

    def _update_statement(self) -> ast.UpdateStmt:
        self._expect_keyword("update")
        table = self._table_name()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        return ast.UpdateStmt(table, tuple(assignments), where)

    def _assignment(self) -> tuple:
        column = self._expect_ident()
        if self._accept_operator("=") is None:
            raise ParseError("expected '=' in UPDATE assignment")
        return (column, self._expression())
