"""SQL front-end: lexer, AST, and recursive-descent parser.

Covers the surface needed for the paper's workloads: full SELECT queries
(expressions, CASE, EXTRACT, LIKE, IN, EXISTS, scalar and correlated
subqueries, BETWEEN, date/interval arithmetic, GROUP BY / HAVING / ORDER BY /
LIMIT, explicit and comma joins, derived tables), DDL (CREATE/DROP TABLE,
CREATE [ORDER] INDEX), DML (INSERT/DELETE/UPDATE) and transaction control.
"""

from repro.sql.lexer import Lexer, Token, TokenType
from repro.sql.parser import Parser, parse, parse_expression
from repro.sql import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "Parser",
    "parse",
    "parse_expression",
    "ast",
]
