"""Connections: dummy clients holding a query context (paper section 3.2).

*"In MonetDBLite [...] these connections are dummy clients that only hold a
query context and can be used to query the database. Multiple connections
can be created for a single database instance [for] inter-query parallelism
[...] and they provide transaction isolation between them."*

A connection runs in autocommit mode until ``BEGIN``; each autocommit
statement gets its own transaction.  ``monetdb_append`` maps to
:meth:`Connection.append`, the zero-parsing bulk-insert path.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import replace

import numpy as np

from repro.algebra import expr as E
from repro.algebra import nodes as N
from repro.algebra.binder import Binder, Scope, bind_statement
from repro.algebra.optimizer import estimate_rows, optimize
from repro.algebra.render import render_plan
from repro.cache import (
    PreparedStatement,
    normalize_sql,
    param_count,
    referenced_tables,
    substitute_params,
)
from repro.cache.plan_cache import PlanCacheEntry
from repro.errors import CatalogError, InterfaceError, TransactionError
from repro.core.result import Result
from repro.mal.codegen import compile_select
from repro.mal.interpreter import ExecutionContext, Interpreter, MaterializedResult
from repro.mal.vector_eval import eval_pred, eval_value
from repro.mal.vectors import vec_from_column, vec_to_column
from repro.obs import QueryTrace
from repro.obs.spans import Span, new_span_id, new_trace_id, render_tree
from repro.sql import ast
from repro.sql.parser import parse
from repro.storage import types as T
from repro.storage.column import Column
from repro.txn.transaction import Transaction

__all__ = ["Connection"]


class Connection:
    """One isolated query context over the embedded database."""

    def __init__(self, database):
        self._database = database
        self._txn: Transaction | None = None
        self._open = True
        #: named prepared statements of this session (sys.prepared)
        self._prepared: dict[str, PreparedStatement] = {}
        self._prepared_seq = itertools.count(1)
        # -- session identity and counters (surfaced by sys.sessions) --
        self.client = "embedded"
        self.session_started = time.time()
        self.session_queries = 0
        self.session_rows = 0
        self.last_sql: str | None = None
        self.session_id = database.register_session(self)
        # -- span identity: every statement of this session shares one
        # trace, rooted in a session span recorded at close() --
        self._session_trace_id = new_trace_id()
        self._session_span_id = new_span_id()
        self._session_start_ns = time.perf_counter_ns()

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Disconnect; an open transaction is rolled back."""
        if self._txn is not None and self._txn.active:
            self._database.txn_manager.rollback(self._txn)
        self._txn = None
        self._prepared.clear()
        if self._open:
            self._database.unregister_session(self.session_id)
            tracer = getattr(self._database, "span_tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.record_span(Span(
                    self._session_trace_id, self._session_span_id, None,
                    f"session:{self.client}", "session", self.session_id,
                    self._session_start_ns,
                    end_ns=time.perf_counter_ns(),
                    attrs={
                        "queries": self.session_queries,
                        "rows": self.session_rows,
                    },
                ))
        self._open = False

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if not self._open:
            raise InterfaceError("connection is closed")

    # -- transaction control ------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    def begin(self) -> None:
        self._check_open()
        if self.in_transaction:
            raise TransactionError("transaction already in progress")
        self._txn = self._database.txn_manager.begin()

    def commit(self) -> None:
        self._check_open()
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        try:
            self._database.txn_manager.commit(self._txn)
        finally:
            self._txn = None

    def rollback(self) -> None:
        self._check_open()
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self._database.txn_manager.rollback(self._txn)
        self._txn = None

    def _statement_txn(self):
        """(transaction, is_autocommit) for one statement."""
        if self.in_transaction:
            txn = self._txn
        else:
            txn = self._database.txn_manager.begin()
        # invalidate the txn's per-statement cache of virtual sys.* tables
        txn.statement_seq += 1
        return txn, txn is not self._txn

    # -- query execution ------------------------------------------------------------------

    def execute(self, sql: str, params=None, copy_data=None) -> Result | None:
        """Run SQL (``monetdb_query``); returns the last statement's result.

        ``params`` supplies values for ``?``/``$n`` placeholders; it is
        only valid with a single statement.  ``copy_data`` supplies the
        input of a ``COPY INTO ... FROM STDIN`` as bytes, text, or a
        file-like object.
        """
        self._check_open()
        result: Result | None = None
        parse_start = time.perf_counter_ns()
        statements = parse(sql)
        parse_ns = time.perf_counter_ns() - parse_start
        if params is not None and len(statements) != 1:
            raise InterfaceError(
                "parameter values require exactly one statement"
            )
        if copy_data is not None and len(statements) != 1:
            raise InterfaceError("COPY data requires exactly one statement")
        for statement in statements:
            result = self._execute_statement(statement, sql, parse_ns,
                                             params=params,
                                             copy_data=copy_data)
            parse_ns = 0  # the batch's parse cost is charged to its first statement
        return result

    def query(self, sql: str) -> Result:
        """Like :meth:`execute` but requires a result-producing statement."""
        result = self.execute(sql)
        if result is None:
            raise InterfaceError("statement produced no result")
        return result

    def _execute_statement(
        self, statement, sql: str = "", parse_ns: int = 0, params=None,
        copy_data=None,
    ) -> Result | None:
        self._stats_incr("statements")
        if isinstance(statement, ast.TransactionStmt):
            action = statement.action
            if action == "begin":
                self.begin()
            elif action == "commit":
                self.commit()
            else:
                self.rollback()
            return None
        if isinstance(statement, ast.ExplainStmt):
            return self._execute_explain(statement, sql, parse_ns)
        if isinstance(statement, ast.PrepareStmt):
            self._do_prepare(statement)
            return None
        if isinstance(statement, ast.DeallocateStmt):
            self.deallocate(statement.name)
            return None
        if isinstance(statement, ast.ExecuteStmt):
            try:
                values = tuple(
                    self._eval_execute_arg(a) for a in statement.args
                )
                return self._run_prepared_named(
                    statement.name.lower(), values, sql, parse_ns
                )
            except Exception:
                # execution-path errors have already rolled back (and
                # cleared an explicit txn); pre-execution errors (unknown
                # name, arity, non-constant args) abort an explicit txn
                # here, per the usual error-aborts-transaction rule
                if self.in_transaction:
                    self._database.txn_manager.rollback(self._txn)
                    self._txn = None
                raise

        if isinstance(statement, (ast.SelectStmt, ast.SetOpStmt)):
            return self._execute_select_statement(
                statement, sql, parse_ns, params=params
            )
        if params is not None and param_count(statement):
            # parametrized DML re-binds per execution with the values
            # substituted as literals (only SELECT plans carry live
            # Param nodes into the compiled program)
            statement = substitute_params(statement, tuple(params))
        return self._execute_generic(statement, sql, parse_ns,
                                     copy_data=copy_data)

    def _execute_generic(
        self, statement, sql: str = "", parse_ns: int = 0, copy_data=None
    ) -> Result | None:
        phases = {"parse": parse_ns} if parse_ns else {}
        started_wall = time.time()
        # back-date so total_us covers the parse phase charged to us
        started = time.perf_counter_ns() - parse_ns
        spans = self._begin_spans(sql, parse_ns)
        txn, autocommit = self._statement_txn()
        try:
            bind_start = time.perf_counter_ns()
            bound = bind_statement(
                statement, lambda name: txn.resolve_table(name).schema
            )
            bind_done = time.perf_counter_ns()
            phases["bind"] = bind_done - bind_start
            if spans is not None:
                spans.record("bind", "phase", bind_start, bind_done)
            result = self._dispatch(bound, txn, phases, copy_data=copy_data,
                                    spans=spans)
            if autocommit:
                self._database.txn_manager.commit(txn)
            self._log_statement(sql, "ok", None, result, started_wall,
                                started, phases)
            if spans is not None:
                spans.finish(
                    "ok", rows=result.nrows if result is not None else 0
                )
            return result
        except Exception as exc:
            if autocommit:
                self._database.txn_manager.rollback(txn)
            else:
                # an error inside an explicit transaction aborts it
                self._database.txn_manager.rollback(txn)
                self._txn = None
            self._stats_incr("query_errors")
            self._log_statement(sql, "error", str(exc), None, started_wall,
                                started, phases)
            if spans is not None:
                spans.finish("error", error=str(exc))
            raise

    # -- cached SELECT path ---------------------------------------------------------

    def _select_cache_deps(self, statement, txn):
        """(deps, cacheable) for a SELECT under ``txn``.

        ``deps`` is a sorted tuple of (normalized name, Table, pinned
        committed version).  Statements touching virtual sys.* views or
        tables created inside the current transaction are not cacheable.
        """
        cacheable = True
        deps = []
        for name in sorted(referenced_tables(statement)):
            table = txn.resolve_table(name)
            if getattr(table, "is_virtual", False):
                cacheable = False
                continue
            key = txn._norm(name)
            if key in txn._created:
                cacheable = False
                continue
            deps.append((key, table, txn.snapshot_version(table).version))
        return tuple(deps), cacheable

    def _execute_select_statement(
        self, statement, sql: str = "", parse_ns: int = 0, params=None
    ) -> Result:
        """Run one SELECT through the plan/result caches.

        A warm plan hit skips bind/optimize/compile (those phase timings
        stay absent, rendering as 0 in ``sys.queries``); a result hit also
        skips execution and serves the stored materialized result.
        """
        database = self._database
        phases = {"parse": parse_ns} if parse_ns else {}
        started_wall = time.time()
        started = time.perf_counter_ns() - parse_ns
        spans = self._begin_spans(sql, parse_ns)
        txn, autocommit = self._statement_txn()
        cache_status = ""
        try:
            deps, cacheable = self._select_cache_deps(statement, txn)
            values = tuple(params) if params is not None else None

            result_key = None
            if (
                cacheable
                and database.config.result_cache
                and database.result_cache.enabled
                and all(
                    key not in txn._deltas or txn._deltas[key].empty
                    for key, _, _ in deps
                )
            ):
                # versions are part of the key: a committed write to any
                # referenced table makes older entries unreachable
                candidate = (
                    statement,
                    values,
                    tuple((key, id(t), v) for key, t, v in deps),
                )
                try:
                    hash(candidate)
                    result_key = candidate
                except TypeError:
                    result_key = None

            materialized = None
            if result_key is not None:
                materialized = database.result_cache.lookup(result_key)
                if materialized is not None:
                    cache_status = "result"

            if materialized is None:
                entry = (
                    database.plan_cache.lookup(statement, txn)
                    if cacheable
                    else None
                )
                if entry is not None:
                    program = entry.program
                    cache_status = "plan"
                    if spans is not None:
                        spans.rows_estimate = entry.rows_estimate
                else:
                    bind_start = time.perf_counter_ns()
                    bound = bind_statement(
                        statement, lambda name: txn.resolve_table(name).schema
                    )
                    optimize_start = time.perf_counter_ns()
                    optimized = optimize(bound, self._nrows_estimator(txn))
                    compile_start = time.perf_counter_ns()
                    program = compile_select(optimized)
                    done = time.perf_counter_ns()
                    phases["bind"] = optimize_start - bind_start
                    phases["optimize"] = compile_start - optimize_start
                    phases["compile"] = done - compile_start
                    rows_estimate = int(estimate_rows(
                        optimized.plan, self._nrows_estimator(txn)
                    ))
                    if spans is not None:
                        spans.record("bind", "phase", bind_start,
                                     optimize_start)
                        spans.record("optimize", "phase", optimize_start,
                                     compile_start)
                        spans.record("compile", "phase", compile_start, done)
                        spans.rows_estimate = rows_estimate
                    if cacheable:
                        database.plan_cache.store(
                            statement,
                            PlanCacheEntry(
                                program, deps, rows_estimate=rows_estimate
                            ),
                        )
                ctx = ExecutionContext(
                    database, txn, database.config, phases=phases,
                    params=values, spans=spans,
                )
                materialized = Interpreter(ctx).run(program)
                if result_key is not None:
                    database.result_cache.store(
                        result_key, materialized, [t for _, t, _ in deps]
                    )

            self._stats_incr("queries")
            self._stats_incr("rows_returned", materialized.nrows)
            result = Result(materialized, self._stats())
            if autocommit:
                database.txn_manager.commit(txn)
            self._log_statement(sql, "ok", None, result, started_wall,
                                started, phases, cache=cache_status)
            if spans is not None:
                spans.finish("ok", rows=materialized.nrows,
                             cache=cache_status)
            return result
        except Exception as exc:
            database.txn_manager.rollback(txn)
            if not autocommit:
                self._txn = None
            self._stats_incr("query_errors")
            self._log_statement(sql, "error", str(exc), None, started_wall,
                                started, phases, cache=cache_status)
            if spans is not None:
                spans.finish("error", error=str(exc), cache=cache_status)
            raise

    # -- prepared statements --------------------------------------------------------

    def prepare(self, sql: str, name: str | None = None) -> PreparedStatement:
        """Prepare one statement with ``?``/``$n`` placeholders.

        Returns a :class:`~repro.cache.PreparedStatement` handle; pass
        ``name`` to make it addressable from SQL ``EXECUTE`` too.
        """
        self._check_open()
        statements = parse(sql)
        if len(statements) != 1:
            raise InterfaceError("prepare() takes exactly one statement")
        statement = statements[0]
        if isinstance(statement, ast.PrepareStmt):
            if name is not None:
                statement = ast.PrepareStmt(
                    name, statement.statement, statement.sql
                )
            return self._do_prepare(statement)
        if isinstance(
            statement,
            (ast.ExecuteStmt, ast.DeallocateStmt, ast.TransactionStmt,
             ast.ExplainStmt),
        ):
            raise InterfaceError("cannot prepare this statement kind")
        if name is None:
            name = f"ps{next(self._prepared_seq)}"
        return self._do_prepare(
            ast.PrepareStmt(name, statement, normalize_sql(sql))
        )

    def _do_prepare(self, statement: ast.PrepareStmt) -> PreparedStatement:
        """Register a parsed PREPARE; binding is deferred to first EXECUTE."""
        key = statement.name.lower()
        if key in self._prepared:
            raise InterfaceError(
                f"prepared statement {key!r} already exists"
            )
        prepared = PreparedStatement(
            self,
            key,
            statement.statement,
            statement.sql or normalize_sql(statement.sql),
            param_count(statement.statement),
        )
        self._prepared[key] = prepared
        self._stats_incr("prepared_statements")
        return prepared

    def execute_prepared(self, name: str, params=()) -> Result | None:
        """Run a prepared statement by name with parameter values."""
        self._check_open()
        self._stats_incr("statements")
        try:
            return self._run_prepared_named(
                str(name).lower(), tuple(params), f"EXECUTE {name}", 0
            )
        except Exception:
            if self.in_transaction:
                self._database.txn_manager.rollback(self._txn)
                self._txn = None
            raise

    def deallocate(self, name: str) -> None:
        """Drop a prepared statement (SQL ``DEALLOCATE``)."""
        key = str(name).lower()
        if self._prepared.pop(key, None) is None:
            raise InterfaceError(
                f"prepared statement {key!r} does not exist"
            )

    def prepared_statements(self) -> list:
        """This session's prepared statements (surfaced by sys.prepared)."""
        return [self._prepared[key] for key in sorted(self._prepared)]

    def _run_prepared_named(
        self, name: str, values: tuple, sql: str, parse_ns: int
    ) -> Result | None:
        prepared = self._prepared.get(name)
        if prepared is None:
            raise InterfaceError(
                f"prepared statement {name!r} does not exist"
            )
        if len(values) != prepared.nparams:
            raise InterfaceError(
                f"prepared statement {name!r} takes {prepared.nparams} "
                f"parameter(s), {len(values)} given"
            )
        prepared.executions += 1
        self._stats_incr("prepared_executions")
        inner = prepared.statement
        if isinstance(inner, (ast.SelectStmt, ast.SetOpStmt)):
            return self._execute_select_statement(
                inner, sql, parse_ns, params=values
            )
        if prepared.nparams:
            inner = substitute_params(inner, values)
        return self._execute_generic(inner, sql, parse_ns)

    def _eval_execute_arg(self, expression):
        """Evaluate one EXECUTE argument to a Python value."""

        def no_tables(name):
            raise InterfaceError("EXECUTE arguments must be constants")

        try:
            bound = Binder(no_tables)._bind_expr(expression, Scope())
        except InterfaceError:
            raise
        except Exception as exc:
            raise InterfaceError(
                f"EXECUTE arguments must be constants: {exc}"
            ) from exc
        if not isinstance(bound, E.Const):
            raise InterfaceError("EXECUTE arguments must be constants")
        if bound.value is None:
            return None
        if bound.type.category == T.TypeCategory.STRING:
            return bound.value
        return bound.type.from_storage(bound.value)

    def _begin_spans(self, sql: str, parse_ns: int, force: bool = False):
        """Open a statement span handle, or None when tracing is off.

        Statements share the session's trace id (one connection = one
        trace) unless a wire context propagated from a client overrides
        it inside the tracer.
        """
        tracer = getattr(self._database, "span_tracer", None)
        if tracer is None:
            return None
        return tracer.statement(
            session=self.session_id,
            sql=sql,
            parse_ns=parse_ns,
            trace_id=self._session_trace_id,
            parent_id=self._session_span_id,
            force=force,
        )

    def _log_statement(
        self, sql, status, error, result, started_wall, started_ns, phases,
        cache: str = "",
    ) -> None:
        """Record one statement in the query log, histogram, and session."""
        total_ns = time.perf_counter_ns() - started_ns
        rows = result.nrows if result is not None else 0
        self.session_queries += 1
        self.session_rows += rows
        self.last_sql = sql or None
        database = self._database
        log = getattr(database, "query_log", None)
        if log is None:
            return
        entry = log.record(
            session=self.session_id,
            sql=sql,
            status=status,
            error=error,
            rows=rows,
            started=started_wall,
            total_us=total_ns / 1000.0,
            phases_us={name: ns / 1000.0 for name, ns in phases.items()},
            cache=cache,
        )
        if entry.is_slow:
            self._stats_incr("slow_queries")
        database.metrics.observe("query_seconds", total_ns * 1e-9)

    def _stats(self):
        return getattr(self._database, "_stats", None)

    def _stats_incr(self, name: str, amount: int = 1) -> None:
        stats = self._stats()
        if stats is not None:
            stats.incr(name, amount)

    def _dispatch(self, bound, txn, phases=None, copy_data=None,
                  spans=None) -> Result | None:
        if isinstance(bound, N.BoundSelect):
            return Result(
                self._run_select(bound, txn, phases=phases, spans=spans),
                self._stats(),
            )
        if isinstance(bound, N.BoundCopyFrom):
            return self._run_copy_from(bound, txn, phases, copy_data,
                                       spans=spans)
        if isinstance(bound, N.BoundCopyTo):
            return self._run_copy_to(bound, txn, phases, spans=spans)
        if isinstance(bound, N.BoundInsert):
            self._run_insert(bound, txn)
            return None
        if isinstance(bound, N.BoundDelete):
            self._run_delete(bound, txn)
            return None
        if isinstance(bound, N.BoundUpdate):
            self._run_update(bound, txn)
            return None
        if isinstance(bound, N.BoundCreateTable):
            txn.create_table(bound.schema, bound.if_not_exists)
            return None
        if isinstance(bound, N.BoundDropTable):
            txn.drop_table(bound.name, bound.if_exists)
            return None
        if isinstance(bound, N.BoundCreateIndex):
            self._run_create_index(bound, txn)
            return None
        if isinstance(bound, N.BoundDropIndex):
            self._database.index_manager.drop_order_index(bound.name)
            return None
        raise InterfaceError(f"cannot execute {type(bound).__name__}")

    def _run_select(self, bound: N.BoundSelect, txn, trace=None, phases=None,
                    spans=None):
        optimize_start = time.perf_counter_ns()
        optimized = optimize(bound, self._nrows_estimator(txn))
        compile_start = time.perf_counter_ns()
        program = compile_select(optimized)
        done = time.perf_counter_ns()
        if phases is not None:
            phases["optimize"] = (
                phases.get("optimize", 0) + compile_start - optimize_start
            )
            phases["compile"] = phases.get("compile", 0) + done - compile_start
        if spans is not None:
            spans.record("optimize", "phase", optimize_start, compile_start)
            spans.record("compile", "phase", compile_start, done)
            if spans.rows_estimate is None:
                spans.rows_estimate = int(
                    estimate_rows(optimized.plan, self._nrows_estimator(txn))
                )
        ctx = ExecutionContext(
            self._database, txn, self._database.config, trace=trace,
            phases=phases, spans=spans,
        )
        result = Interpreter(ctx).run(program)
        self._stats_incr("queries")
        self._stats_incr("rows_returned", result.nrows)
        return result

    @staticmethod
    def _nrows_estimator(txn):
        """Cardinality source for the optimizer: the txn's pinned snapshot
        (which also statement-caches virtual sys.* materializations)."""
        return lambda name: txn.snapshot_version(txn.resolve_table(name)).nrows

    # -- EXPLAIN [ANALYZE] ------------------------------------------------------------

    def _execute_explain(self, statement, sql: str = "",
                         parse_ns: int = 0) -> Result:
        """Run ``EXPLAIN [ANALYZE] <select>``; one-column text result.

        ``EXPLAIN ANALYZE`` always records a full span tree (forced deep
        tracing, even when ``trace_spans`` is off) and renders it with
        per-span total and self time; the spans enter the tracer's ring
        buffer only when tracing is enabled.
        """
        inner = statement.statement
        spans = (
            self._begin_spans(sql, parse_ns, force=True)
            if statement.analyze else None
        )
        txn, autocommit = self._statement_txn()
        try:
            bind_start = time.perf_counter_ns()
            bound = bind_statement(
                inner, lambda name: txn.resolve_table(name).schema
            )
            bind_done = time.perf_counter_ns()
            if not isinstance(bound, N.BoundSelect):
                raise InterfaceError("EXPLAIN only supports SELECT statements")
            if spans is not None:
                spans.record("bind", "phase", bind_start, bind_done)
            optimize_start = time.perf_counter_ns()
            optimized = optimize(bound, self._nrows_estimator(txn))
            compile_start = time.perf_counter_ns()
            program = compile_select(optimized)
            compile_done = time.perf_counter_ns()
            if statement.analyze:
                if spans is not None:
                    spans.record("optimize", "phase",
                                 optimize_start, compile_start)
                    spans.record("compile", "phase",
                                 compile_start, compile_done)
                    spans.rows_estimate = int(estimate_rows(
                        optimized.plan, self._nrows_estimator(txn)
                    ))
                    ctx = ExecutionContext(
                        self._database, txn, self._database.config,
                        phases={}, spans=spans,
                    )
                    materialized = Interpreter(ctx).run(program)
                    spans.finish("ok", rows=materialized.nrows)
                    tracer = self._database.span_tracer
                    dicts = [
                        s.to_dict(tracer.epoch_of) for s in spans.spans
                    ]
                    lines = render_tree(dicts).split("\n")
                    lines.append("")
                    lines.append(
                        f"total: {dicts[0]['duration_us']:.1f} us, "
                        f"{len(program.instructions)} instructions, "
                        f"{materialized.nrows} result rows"
                    )
                else:
                    # no tracer on this database: flat instruction trace
                    trace = QueryTrace()
                    ctx = ExecutionContext(
                        self._database, txn, self._database.config,
                        trace=trace,
                    )
                    Interpreter(ctx).run(program)
                    lines = trace.render().split("\n")
                self._stats_incr("traced_queries")
            else:
                from repro.exec.fragments import render_fragments

                lines = render_plan(optimized.plan).split("\n")
                lines.append("")
                lines.extend(program.render().split("\n"))
                lines.append("")
                lines.extend(render_fragments(program))
            if autocommit:
                self._database.txn_manager.commit(txn)
        except Exception as exc:
            if spans is not None:
                spans.finish("error", error=str(exc))
            self._database.txn_manager.rollback(txn)
            if not autocommit:
                self._txn = None
            raise
        column = Column.from_values(T.STRING, lines)
        return Result(
            MaterializedResult(["explain"], [column]), self._stats()
        )

    def explain(self, sql: str) -> str:
        """The compiled MAL program listing for a SELECT (debugging aid)."""
        self._check_open()
        statements = parse(sql)
        if len(statements) != 1:
            raise InterfaceError("EXPLAIN takes exactly one statement")
        txn, autocommit = self._statement_txn()
        try:
            bound = bind_statement(
                statements[0], lambda name: txn.resolve_table(name).schema
            )
            if not isinstance(bound, N.BoundSelect):
                raise InterfaceError("EXPLAIN only supports SELECT")
            optimized = optimize(bound, self._nrows_estimator(txn))
            rendered = compile_select(optimized).render()
            if autocommit:
                self._database.txn_manager.rollback(txn)
            return rendered
        except Exception:
            self._database.txn_manager.rollback(txn)
            if not autocommit:
                self._txn = None
            raise

    def trace_query(self, sql: str):
        """Execute one SELECT with tracing on; returns ``(Result, QueryTrace)``.

        The programmatic face of ``EXPLAIN ANALYZE``: same instrumentation,
        but the caller gets both the materialized result and the structured
        :class:`~repro.obs.QueryTrace` instead of a rendered text table.
        """
        self._check_open()
        statements = parse(sql)
        if len(statements) != 1:
            raise InterfaceError("trace_query takes exactly one statement")
        txn, autocommit = self._statement_txn()
        try:
            bound = bind_statement(
                statements[0], lambda name: txn.resolve_table(name).schema
            )
            if not isinstance(bound, N.BoundSelect):
                raise InterfaceError("trace_query only supports SELECT")
            trace = QueryTrace(sql=sql)
            materialized = self._run_select(bound, txn, trace=trace)
            self._stats_incr("traced_queries")
            if autocommit:
                self._database.txn_manager.commit(txn)
            return Result(materialized, self._stats()), trace
        except Exception:
            if autocommit:
                self._database.txn_manager.rollback(txn)
            else:
                self._database.txn_manager.rollback(txn)
                self._txn = None
            raise

    # -- DML ----------------------------------------------------------------------------------

    def _run_insert(self, bound: N.BoundInsert, txn) -> int:
        table = txn.resolve_table(bound.table_name)
        schema = table.schema
        if bound.select is not None:
            materialized = self._run_select(bound.select, txn)
            source = {
                idx: materialized.columns[i]
                for i, idx in enumerate(bound.column_indexes)
            }
            nrows = materialized.nrows
        else:
            source = {}
            nrows = len(bound.rows)
            for pos, idx in enumerate(bound.column_indexes):
                coldef = schema.columns[idx]
                values = [row[pos] for row in bound.rows]
                source[idx] = Column.from_values(coldef.type, values)
        bundle = []
        for idx, coldef in enumerate(schema.columns):
            if idx in source:
                column = source[idx]
                same_string = (
                    column.type.category == coldef.type.category
                    and column.type.is_variable
                )
                if column.type != coldef.type and not same_string:
                    column = _convert_column(column, coldef.type, nrows)
                bundle.append(column)
            else:
                bundle.append(Column.from_values(coldef.type, [None] * nrows))
        txn.append(table, bundle)
        self._stats_incr("rows_appended", nrows)
        return nrows

    def _run_delete(self, bound: N.BoundDelete, txn) -> int:
        table = txn.resolve_table(bound.table_name)
        view = txn.read_version(table)
        if bound.predicate is None:
            ids = np.arange(view.nrows, dtype=np.int64)
        else:
            ctx = ExecutionContext(self._database, txn, self._database.config)
            inputs = [vec_from_column(c) for c in view.columns]
            mask = eval_pred(bound.predicate, inputs, ctx).definite()
            ids = np.flatnonzero(mask)
        if len(ids):
            txn.delete_rows(table, ids)
        return len(ids)

    def _run_update(self, bound: N.BoundUpdate, txn) -> int:
        table = txn.resolve_table(bound.table_name)
        view = txn.read_version(table)
        ctx = ExecutionContext(self._database, txn, self._database.config)
        inputs = [vec_from_column(c) for c in view.columns]
        if bound.predicate is None:
            ids = np.arange(view.nrows, dtype=np.int64)
        else:
            mask = eval_pred(bound.predicate, inputs, ctx).definite()
            ids = np.flatnonzero(mask)
        if not len(ids):
            return 0
        matched = [vec.take(ids) for vec in inputs]
        assigned = dict(bound.assignments)
        bundle = []
        for idx, coldef in enumerate(table.schema.columns):
            if idx in assigned:
                value = eval_value(assigned[idx], matched, ctx)
                bundle.append(vec_to_column(value, len(ids)))
            else:
                column = view.columns[idx]
                bundle.append(column.take(ids))
        txn.delete_rows(table, ids)
        txn.append(table, bundle)
        return len(ids)

    def _run_create_index(self, bound: N.BoundCreateIndex, txn) -> None:
        table = txn.resolve_table(bound.table_name)
        if getattr(table, "is_virtual", False):
            raise CatalogError(
                f"cannot index {bound.table_name!r}: system views are "
                f"regenerated on every scan"
            )
        if len(bound.columns) != 1:
            raise CatalogError("indexes cover exactly one column")
        colpos = table.schema.column_index(bound.columns[0])
        manager = self._database.index_manager
        if bound.ordered:
            manager.create_order_index(bound.name, table, table.current, colpos)
        else:
            manager.hash_for(table, table.current, colpos)

    # -- COPY bulk load / export -------------------------------------------------------------------

    def _run_copy_from(self, bound, txn, phases=None, copy_data=None,
                       spans=None) -> Result:
        """Execute COPY INTO ... FROM (or CREATE TABLE ... FROM).

        The load goes through :func:`repro.copy.load_into`, so it lands on
        the ordinary transactional append path; a failure rolls the whole
        statement back via the caller's error handling.
        """
        from repro.copy import infer_schema, load_into

        database = self._database
        options = bound.options
        if isinstance(copy_data, str):
            copy_data = copy_data.encode("utf-8")
        source = bound.path if bound.path is not None else copy_data
        if source is None:
            raise InterfaceError(
                "COPY FROM STDIN requires data (execute(..., copy_data=...))"
            )
        started = time.perf_counter_ns()
        target = bound.table_name
        try:
            if bound.create_name is not None:
                schema, header = infer_schema(
                    bound.create_name, source, options
                )
                target = bound.create_name
                table = txn.create_table(schema, bound.if_not_exists)
                column_indexes = list(range(len(schema.columns)))
                options = replace(options, header=header)
            else:
                table = txn.resolve_table(bound.table_name)
                column_indexes = bound.column_indexes
            exec_span = (
                spans.begin("execute", "phase") if spans is not None else None
            )
            try:
                load = load_into(
                    database,
                    txn,
                    table,
                    source,
                    options,
                    column_indexes=column_indexes,
                    chunk_bytes=database.config.copy_chunk_bytes,
                    spans=spans if spans is not None and spans.deep else None,
                )
            except BaseException:
                if exec_span is not None:
                    spans.end(exec_span, status="error")
                raise
            if exec_span is not None:
                spans.end(exec_span, rows_out=load.rows_loaded,
                          bytes=load.bytes_read)
            total_us = (time.perf_counter_ns() - started) / 1000.0
            if phases is not None:
                phases["execute"] = time.perf_counter_ns() - started
            database.metrics.incr("copy_rows_loaded", load.rows_loaded)
            database.metrics.incr("copy_rows_rejected", len(load.rejects))
            database.metrics.incr("copy_bytes_read", load.bytes_read)
            database.copy_rejects = load.rejects
            database.record_copy(
                direction="in",
                table_name=target,
                source=bound.path or "<stream>",
                rows=load.rows_loaded,
                rejected=len(load.rejects),
                nbytes=load.bytes_read,
                total_us=total_us,
                status="ok",
                error="",
            )
            self._stats_incr("rows_appended", load.rows_loaded)
            column = Column.from_values(T.BIGINT, [load.rows_loaded])
            return Result(
                MaterializedResult(["rows_loaded"], [column]), self._stats()
            )
        except Exception as exc:
            database.record_copy(
                direction="in",
                table_name=target or "?",
                source=bound.path or "<stream>",
                rows=0,
                rejected=0,
                nbytes=0,
                total_us=(time.perf_counter_ns() - started) / 1000.0,
                status="error",
                error=str(exc),
            )
            raise

    def _run_copy_to(self, bound, txn, phases=None, spans=None) -> Result:
        """Execute COPY ... TO: export a table or query result as CSV."""
        from repro.copy import export_csv

        database = self._database
        started = time.perf_counter_ns()
        try:
            if bound.select is not None:
                materialized = self._run_select(bound.select, txn,
                                                phases=phases, spans=spans)
                names = materialized.names
                columns = materialized.columns
            else:
                table = txn.resolve_table(bound.table_name)
                view = txn.read_version(table)
                names = [c.name for c in table.schema.columns]
                columns = view.columns
            nrows, nbytes, text = export_csv(
                names, columns, bound.options, bound.path
            )
            total_us = (time.perf_counter_ns() - started) / 1000.0
            if phases is not None and "execute" not in phases:
                phases["execute"] = time.perf_counter_ns() - started
            database.metrics.incr("copy_bytes_written", nbytes)
            self._stats_incr("rows_exported", nrows)
            database.record_copy(
                direction="out",
                table_name=bound.table_name or "<query>",
                source=bound.path or "<stdout>",
                rows=nrows,
                rejected=0,
                nbytes=nbytes,
                total_us=total_us,
                status="ok",
                error="",
            )
            column = Column.from_values(T.BIGINT, [nrows])
            result = Result(
                MaterializedResult(["rows_exported"], [column]), self._stats()
            )
            result.copy_text = text
            return result
        except Exception as exc:
            database.record_copy(
                direction="out",
                table_name=bound.table_name or "<query>",
                source=bound.path or "<stdout>",
                rows=0,
                rejected=0,
                nbytes=0,
                total_us=(time.perf_counter_ns() - started) / 1000.0,
                status="error",
                error=str(exc),
            )
            raise

    # -- bulk append (``monetdb_append``) ----------------------------------------------------------

    def append(self, table_name: str, data) -> int:
        """Bulk-append columnar data, bypassing SQL parsing entirely.

        Paper section 3.2: *"there is significant overhead involved in
        parsing individual INSERT INTO statements, which becomes a
        bottleneck when the user wants to insert a large amount of data."*

        ``data`` is a mapping of column name to NumPy array (or list); all
        schema columns must be present.  Arrays whose dtype already matches
        the storage dtype are adopted without conversion or copy.
        """
        self._check_open()
        txn, autocommit = self._statement_txn()
        try:
            table = txn.resolve_table(table_name)
            schema = table.schema
            lowered = {str(k).lower(): v for k, v in data.items()}
            bundle = []
            nrows = None
            for coldef in schema.columns:
                if coldef.name.lower() not in lowered:
                    raise CatalogError(
                        f"append to {table_name}: missing column {coldef.name!r}"
                    )
                raw = lowered[coldef.name.lower()]
                if isinstance(raw, np.ndarray):
                    column = Column.from_numpy(coldef.type, raw)
                else:
                    column = Column.from_values(coldef.type, raw)
                if nrows is None:
                    nrows = len(column)
                elif len(column) != nrows:
                    raise CatalogError("append columns have differing lengths")
                bundle.append(column)
            txn.append(table, bundle)
            if autocommit:
                self._database.txn_manager.commit(txn)
            self._stats_incr("rows_appended", nrows or 0)
            return nrows or 0
        except Exception:
            # same rule as execute(): a failed statement aborts its
            # transaction — implicit or explicit — so no transaction
            # lingers pinning an old snapshot
            self._database.txn_manager.rollback(txn)
            if not autocommit:
                self._txn = None
            raise


def _convert_column(column: Column, target, nrows: int) -> Column:
    """Cast a result column into the target column type for INSERT-SELECT."""
    from repro.mal.vector_eval import _cast_vec

    vec = _cast_vec(vec_from_column(column), target, nrows)
    return vec_to_column(vec, nrows)
