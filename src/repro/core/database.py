"""Database lifecycle: startup, the single-instance guard, shutdown.

Paper section 3.2: *"The database can be initialized using the
monetdb_startup function [taking] as optional parameter a reference to a
directory in which it can persistently store any data. If no directory is
provided, MonetDBLite will be launched in an in-memory only mode."*

Paper section 3.4 documents that global state makes it *impossible to run
MonetDBLite twice in the same process*; we reproduce that limitation (and
its error behavior) deliberately with a module-level instance guard, and we
reproduce the "Garbage Collection" requirement by making
:meth:`Database.shutdown` release every piece of state so a fresh database
can be started afterwards in the same process.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.cache import PlanCache, ResultCache
from repro.errors import DatabaseLockedError, StartupError
from repro.exec.stats import ExecStats
from repro.index import IndexManager
from repro.mal.interpreter import ExecutionConfig
from repro.obs import MetricsRegistry, QueryLog, SpanTracer
from repro.obs.systables import register_sys_tables, storage_rows
from repro.storage.catalog import Catalog, ColumnDef, TableSchema
from repro.storage.column import Column
from repro.storage.persist import (
    checkpoint_database,
    database_exists,
    load_database,
)
from repro.storage.table import Table
from repro.storage.types import parse_type
from repro.storage.wal import WriteAheadLog
from repro.txn import TransactionManager

__all__ = ["Database", "startup", "shutdown", "active_database"]

_instance_lock = threading.RLock()
_active: "Database | None" = None

#: Checkpoint once the WAL grows past this size (bytes).
WAL_CHECKPOINT_BYTES = 64 * 1024 * 1024


def startup(directory: str | None = None, **config_kwargs) -> "Database":
    """Start the process-wide database instance (``monetdb_startup``).

    Raises :class:`~repro.errors.DatabaseLockedError` if an instance is
    already running in this process — the paper's single-instance
    limitation, reproduced.
    """
    global _active
    with _instance_lock:
        if _active is not None:
            raise DatabaseLockedError(
                "database locked: a database is already running in this "
                "process; shut it down first (MonetDBLite limitation, "
                "paper section 5.1)"
            )
        database = Database(directory, **config_kwargs)
        _active = database
        return database


def shutdown() -> None:
    """Shut down the active instance, releasing all global state."""
    global _active
    with _instance_lock:
        if _active is not None:
            _active.shutdown()
            _active = None


def active_database() -> "Database | None":
    return _active


class Database:
    """One embedded database instance (in-memory or persistent)."""

    def __init__(self, directory: str | None = None, **config_kwargs):
        self.directory = Path(directory) if directory else None
        self.in_memory = directory is None
        self.catalog = Catalog()
        self.txn_manager = TransactionManager(self)
        self.index_manager = IndexManager()
        self.config = ExecutionConfig(**config_kwargs)
        self.metrics = MetricsRegistry()
        self._stats = self.metrics.counters  # legacy stats() face
        self.plan_cache = PlanCache(
            self.config.plan_cache_entries,
            self.config.plan_cache_bytes,
            metrics=self.metrics,
        )
        self.result_cache = ResultCache(
            self.config.result_cache_bytes if self.config.result_cache else 0,
            metrics=self.metrics,
        )
        self.query_log = QueryLog(
            size=self.config.query_log_size,
            slow_query_us=self.config.slow_query_us,
        )
        self.span_tracer = SpanTracer(
            enabled=self.config.trace_spans,
            sample_rate=self.config.span_sample_rate,
            slow_us=self.config.span_slow_us,
            buffer_size=self.config.span_buffer_size,
            metrics=self.metrics,
        )
        self.exec_stats = ExecStats(self.metrics)
        self._session_lock = threading.Lock()
        self._shutdown_lock = threading.Lock()
        self._sessions: dict = {}
        self._session_seq = itertools.count(1)
        #: ring buffer behind sys.copy_history; rejects of the last COPY
        #: back sys.rejects (MonetDB keeps them per-load too)
        self.copy_history: deque = deque(maxlen=256)
        self.copy_rejects: list = []
        self._copy_seq = itertools.count(1)
        self.wal: WriteAheadLog | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._open = True
        register_sys_tables(self)

        if self.directory is not None:
            self._open_persistent()

    # -- persistence -----------------------------------------------------------------

    def _open_persistent(self) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StartupError(f"cannot create database directory: {exc}") from exc
        max_commit = 0
        if database_exists(self.directory):
            max_commit = load_database(self.directory, self.catalog)
            for name in self.catalog.list_tables():
                self.index_manager.attach_table(self.catalog.get(name))
        self.wal = WriteAheadLog(self.directory / "wal.log")
        max_commit = max(max_commit, self._replay_wal())
        self.txn_manager.set_commit_counter(max_commit)

    def _replay_wal(self) -> int:
        records = WriteAheadLog.replay(self.directory / "wal.log")
        max_commit = 0
        for record in records:
            max_commit = max(max_commit, record["commit_id"])
            for op in record["ops"]:
                self._replay_op(op, record["commit_id"])
        return max_commit

    def _replay_op(self, op: dict, commit_id: int) -> None:
        kind = op["op"]
        if kind == "create_table":
            if self.catalog.exists(op["name"]):
                return
            columns = [
                ColumnDef(c["name"], parse_type(c["type"]), c["not_null"])
                for c in op["columns"]
            ]
            table = Table(TableSchema(op["name"], columns, schema=op["schema"]))
            self.on_table_created(table)
            return
        if kind == "drop_table":
            self.on_table_dropped(op["name"])
            self.catalog.drop(op["name"], if_exists=True)
            return
        if kind == "modify":
            if not self.catalog.exists(op["name"]):
                return
            table: Table = self.catalog.get(op["name"])
            current = table.current
            columns = list(current.columns)
            if op.get("deleted"):
                keep = np.ones(current.nrows, dtype=bool)
                doomed = [r for r in op["deleted"] if r < current.nrows]
                keep[np.asarray(doomed, dtype=np.int64)] = False
                columns = [col.filter(keep) for col in columns]
            for bundle in op.get("appends", []):
                extras = []
                for coldef, colmeta in zip(table.schema.columns, bundle):
                    if colmeta["kind"] == "values":
                        extras.append(
                            Column.from_values(coldef.type, colmeta["values"])
                        )
                    else:
                        data = np.frombuffer(
                            colmeta["bytes"], dtype=np.dtype(colmeta["dtype"])
                        ).copy()
                        extras.append(Column(coldef.type, data))
                columns = [col.append(extra) for col, extra in zip(columns, extras)]
            change = "delete" if op.get("deleted") else "append"
            table.install_version(columns, commit_id, change)

    def checkpoint(self) -> None:
        """Write all tables to disk and truncate the WAL."""
        if self.directory is None:
            return
        checkpoint_database(self.directory, self.catalog)
        if self.wal is not None:
            self.wal.truncate()

    # -- commit hooks -------------------------------------------------------------------

    def on_table_created(self, table: Table) -> None:
        """Catalog registration plus index lifecycle attachment."""
        self.catalog.register(table)
        self.index_manager.attach_table(table)
        add_listener = getattr(table, "add_modification_listener", None)
        if add_listener is not None:
            add_listener(self._on_table_modified)

    def _on_table_modified(self, change_kind: str, table: Table) -> None:
        """Eagerly drop cached plans/results touching a modified table."""
        self.plan_cache.invalidate_table(table.schema.name)
        self.result_cache.invalidate_table(table.schema.name)

    def on_table_dropped(self, name: str) -> None:
        self.index_manager.detach_table(name)
        self.plan_cache.invalidate_table(name)
        self.result_cache.invalidate_table(name)

    def after_commit(self, commit_id: int) -> None:
        """Post-commit maintenance: checkpoint when the WAL grows large."""
        if self.wal is not None and self.wal.size > WAL_CHECKPOINT_BYTES:
            self.checkpoint()

    # -- observability ------------------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time snapshot of engine-wide counters.

        Counts queries served, rows appended/returned/exported, bytes on
        the wire (server mode), and transaction commit/abort totals.
        """
        return self._stats.snapshot()

    def metrics_text(self) -> str:
        """All engine metrics in Prometheus text exposition format.

        Mirrors the server's ``METRICS`` wire command for the embedded
        case; storage totals and session counts are computed on demand.
        """
        return self.metrics.prometheus_text(
            prefix="repro",
            extra_gauges={
                "open_sessions": len(self._sessions),
                "tables": len(self.catalog.list_tables()),
                "storage_bytes": sum(row[7] for row in storage_rows(self)),
                "plan_cache_entries": len(self.plan_cache),
                "plan_cache_bytes": self.plan_cache.bytes,
                "result_cache_entries": len(self.result_cache),
                "result_cache_bytes": self.result_cache.bytes,
            },
        )

    def export_trace(self, fmt: str = "chrome", trace_id: str | None = None,
                     path: str | None = None):
        """Retained spans as a Chrome ``trace_event`` or OTLP-shaped dict.

        ``fmt`` is ``"chrome"`` (loadable in ``chrome://tracing`` / Perfetto)
        or ``"otlp"``; ``trace_id`` filters to one trace; ``path`` also
        writes the JSON document to a file.  Returns the document dict.
        """
        from repro.obs.export import export_spans

        document = export_spans(self.span_tracer.export_dicts(trace_id), fmt)
        if path is not None:
            import json

            Path(path).write_text(json.dumps(document, indent=2))
        return document

    # -- sessions (sys.sessions) --------------------------------------------------------

    def register_session(self, connection) -> int:
        """Assign a session id to a new connection and track it."""
        with self._session_lock:
            session_id = next(self._session_seq)
            self._sessions[session_id] = connection
            return session_id

    def unregister_session(self, session_id: int) -> None:
        with self._session_lock:
            self._sessions.pop(session_id, None)

    def sessions(self) -> list:
        """The currently open connections, in session-id order."""
        with self._session_lock:
            return [self._sessions[sid] for sid in sorted(self._sessions)]

    # -- COPY bookkeeping (sys.copy_history / sys.rejects) ------------------------------

    def record_copy(self, **fields) -> None:
        """Append one finished (or failed) COPY to the history ring."""
        fields.setdefault("started", time.time())
        fields["id"] = next(self._copy_seq)
        self.copy_history.append(fields)

    # -- resources ----------------------------------------------------------------------

    @property
    def thread_pool(self) -> ThreadPoolExecutor:
        """Lazily created worker pool for chunked parallel execution."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.max_workers,
                thread_name_prefix="repro-mal",
            )
        return self._pool

    def connect(self):
        """Create a new dummy-client connection (``monetdb_connect``)."""
        from repro.core.connection import Connection

        if not self._open:
            raise StartupError("database has been shut down")
        return Connection(self)

    def shutdown(self) -> None:
        """In-process shutdown: persist, then free *everything*.

        The paper (section 3.4, "Garbage Collection") stresses that an
        embedded database cannot rely on process exit for cleanup; all
        state must be reset so the process can start a fresh database.
        """
        global _active
        with self._shutdown_lock:
            if not self._open:
                return  # concurrent caller already tore everything down
            # refuse new work first, then drain the pool: in-flight chunk
            # and morsel tasks may still be reading table versions that the
            # teardown below frees — shutdown(wait=False) raced them
            self._open = False
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            if self.directory is not None:
                self.checkpoint()
                if self.wal is not None:
                    self.wal.close()
            self._teardown()
        with _instance_lock:
            if _active is self:
                _active = None

    def _teardown(self) -> None:
        self.index_manager.clear()
        self.catalog.clear()
        self.query_log.clear()
        self.span_tracer.clear()
        self.plan_cache.clear()
        self.result_cache.clear()
        self.copy_history.clear()
        self.copy_rejects.clear()
        with self._session_lock:
            self._sessions.clear()
