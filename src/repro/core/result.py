"""Query results: the semi-opaque ``monetdb_result`` of the paper.

Listing 1 of the paper exposes ``nrows``, ``ncols``, ``type`` and ``id``;
columns are fetched individually with ``monetdb_result_fetch`` at one of
two levels:

* **low level** — the engine's packed storage array is returned directly,
  zero-copy, protected against writes (see :mod:`repro.interface.zerocopy`);
* **high level** — a :class:`MonetdbColumn` record mirroring Listing 2:
  raw data plus ``null_value``, ``scale`` and an ``is_null`` callable, so a
  client needs no knowledge of the engine internals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InterfaceError
from repro.mal.interpreter import MaterializedResult
from repro.storage import types as T

__all__ = ["Result", "MonetdbColumn"]

_result_ids = itertools.count(1)


@dataclass
class MonetdbColumn:
    """High-level column view (paper Listing 2)."""

    type: str
    data: np.ndarray
    count: int
    null_value: object
    scale: float
    is_null: Callable[[object], bool]


class Result:
    """A materialized query result with columnar access."""

    def __init__(self, materialized: MaterializedResult, stats=None):
        self._materialized = materialized
        self._stats = stats  # engine EngineStats; counts exported rows
        self.nrows = materialized.nrows
        self.ncols = len(materialized.columns)
        self.type = "table"
        self.id = next(_result_ids)
        self._closed = False
        #: CSV payload of a ``COPY ... TO STDOUT`` (None otherwise)
        self.copy_text: str | None = None

    def _count_exported(self, nrows: int) -> None:
        if self._stats is not None:
            self._stats.incr("rows_exported", nrows)

    @property
    def names(self) -> list:
        return list(self._materialized.names)

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("result has been cleaned up")

    def _column(self, index: int):
        self._check_open()
        if not 0 <= index < self.ncols:
            raise InterfaceError(f"column index {index} out of range")
        return self._materialized.columns[index]

    def column_index(self, name: str) -> int:
        try:
            return self._materialized.names.index(name.lower())
        except ValueError:
            raise InterfaceError(f"no result column named {name!r}") from None

    # -- the two fetch levels (paper section 3.2) ---------------------------------

    def fetch_low_level(self, index: int) -> np.ndarray:
        """Zero-copy view of the packed storage array (read-only)."""
        column = self._column(index)
        view = column.data.view()
        view.flags.writeable = False
        return view

    def fetch_high_level(self, index: int) -> MonetdbColumn:
        """Self-describing column record (Listing 2)."""
        column = self._column(index)
        ctype = column.type
        return MonetdbColumn(
            type=ctype.name,
            data=self.fetch_low_level(index),
            count=len(column),
            null_value=ctype.null_value,
            scale=float(10**ctype.scale) if ctype.scale else 1.0,
            is_null=ctype.is_null_scalar,
        )

    # -- client-friendly conversions ------------------------------------------------

    def to_numpy(self, column, lazy: bool = False, copy: bool = False):
        """Native NumPy export of a column (zero-copy when bit-compatible).

        See :mod:`repro.interface.zerocopy` for the exact transfer strategy
        per type.  ``column`` may be a name or a position.
        """
        from repro.interface.zerocopy import export_column

        if isinstance(column, str):
            column = self.column_index(column)
        self._count_exported(self.nrows)
        return export_column(self._column(column), lazy=lazy, copy=copy)

    def to_dict(self, lazy: bool = False) -> dict:
        """All columns as {name: array} — the dbReadTable shape."""
        return {
            name: self.to_numpy(i, lazy=lazy)
            for i, name in enumerate(self._materialized.names)
        }

    def column_values(self, index: int) -> list:
        """One column as a list of Python values (NULL -> None)."""
        return self._column(index).to_python()

    def fetchall(self) -> list:
        """All rows as tuples of Python values (row-wise convenience)."""
        self._check_open()
        self._count_exported(self.nrows)
        columns = [col.to_python() for col in self._materialized.columns]
        return list(zip(*columns)) if columns else []

    def fetchone(self):
        rows = self.fetchall()
        return rows[0] if rows else None

    def scalar(self):
        """The single value of a 1x1 result."""
        if self.nrows != 1 or self.ncols != 1:
            raise InterfaceError(
                f"scalar() on a {self.nrows}x{self.ncols} result"
            )
        return self._column(0).value(0)

    def close(self) -> None:
        """Release the result (``monetdb_cleanup_result``)."""
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Result(id={self.id}, {self.nrows}x{self.ncols})"
