"""The embedded analytical database: startup, connections, results.

This is the paper's primary contribution layer (sections 3.2-3.4): an
in-process database with no server, no external dependencies, an in-memory
or persistent mode, multiple isolated connections, bulk append, and errors
reported as exceptions rather than process exits.
"""

from repro.core.database import Database, shutdown, startup
from repro.core.connection import Connection
from repro.core.result import Result

__all__ = ["Database", "Connection", "Result", "startup", "shutdown"]
