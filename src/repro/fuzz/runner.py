"""Differential execution harness: repro vs the SQLite oracle.

Each scenario builds identical tables in a fresh repro database and a
fresh in-memory SQLite connection from the *same* SQL text, then replays
generated queries against both.  Outcomes are classified as:

* ``ok`` — same rows (tolerant compare), or both engines rejected the
  query with a proper error;
* ``wrong_rows`` / ``wrong_nulls`` — result sets differ;
* ``error_vs_result`` — one engine answered, the other errored;
* ``internal_error`` — repro raised anything that is not a
  ``repro.errors.DatabaseError`` (an engine crash by definition).

Every divergence is delta-minimized and written to the corpus directory
as a self-contained, replayable ``.sql`` file.
"""

from __future__ import annotations

import hashlib
import sqlite3
import time

import repro
from repro.errors import DatabaseError
from repro.fuzz import shrink as shrink_mod
from repro.fuzz.compare import diff_classification, normalize_rows
from repro.fuzz.grammar import QueryGen
from repro.fuzz.schema import Scenario, gen_tables
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Outcome",
    "Divergence",
    "Fuzzer",
    "execute_pair",
    "classify",
    "run_repro",
]


class Outcome:
    """One engine's answer to one query."""

    __slots__ = ("status", "rows", "error")

    def __init__(self, status: str, rows=None, error: str = ""):
        self.status = status  # "rows" | "error" | "internal"
        self.rows = rows
        self.error = error


class Divergence:
    """A classified, minimized failure."""

    __slots__ = ("classification", "sql", "scenario", "detail")

    def __init__(self, classification, sql, scenario, detail):
        self.classification = classification
        self.sql = sql
        self.scenario = scenario
        self.detail = detail


def _run_repro(statements: list, query_sql: str) -> Outcome:
    database = repro.Database()
    try:
        connection = database.connect()
        for statement in statements:
            connection.execute(statement)
        rows = connection.execute(query_sql).fetchall()
        return Outcome("rows", rows=list(rows))
    except DatabaseError as exc:
        return Outcome("error", error=f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 — the whole point of fuzzing
        return Outcome("internal", error=f"{type(exc).__name__}: {exc}")
    finally:
        database.shutdown()


#: public name for corpus replay, where only the repro side runs
run_repro = _run_repro


def _run_sqlite(statements: list, query_sql: str) -> Outcome:
    connection = sqlite3.connect(":memory:")
    try:
        # match repro's case-sensitive LIKE
        connection.execute("PRAGMA case_sensitive_like=ON")
        for statement in statements:
            connection.execute(statement)
        rows = connection.execute(query_sql).fetchall()
        return Outcome("rows", rows=list(rows))
    except sqlite3.Error as exc:
        return Outcome("error", error=f"{type(exc).__name__}: {exc}")
    finally:
        connection.close()


def execute_pair(statements: list, query_sql: str):
    """Run one query against both engines."""
    return _run_repro(statements, query_sql), _run_sqlite(statements, query_sql)


def classify(ours: Outcome, oracle: Outcome, ordered: bool):
    """(classification, human detail) for a pair of outcomes."""
    if ours.status == "internal":
        return "internal_error", ours.error
    if ours.status == "error" and oracle.status == "error":
        return "ok", ""  # both engines reject the query: agreement
    if ours.status != oracle.status:
        detail = (
            f"repro: {ours.error or f'{len(ours.rows)} rows'} / "
            f"sqlite: {oracle.error or f'{len(oracle.rows)} rows'}"
        )
        return "error_vs_result", detail
    left = normalize_rows(ours.rows)
    right = normalize_rows(oracle.rows)
    verdict = diff_classification(left, right, ordered)
    if verdict == "ok":
        return "ok", ""
    return verdict, f"repro: {left[:5]!r}... / sqlite: {right[:5]!r}..."


def run_scenario_query(scenario: Scenario, query=None):
    """Classify one scenario/query pair end to end."""
    query = query if query is not None else scenario.query
    statements = scenario.setup_statements()
    sql = query.render()
    ours, oracle = execute_pair(statements, sql)
    return classify(ours, oracle, query.ordered_all)


class Fuzzer:
    """The fuzz campaign driver."""

    def __init__(self, seed: int = 0, corpus_dir=None, metrics=None,
                 queries_per_scenario: int = 20):
        import random

        self.seed = seed
        self.rng = random.Random(seed)
        self.corpus_dir = corpus_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queries_per_scenario = queries_per_scenario
        self.divergences: list = []

    def run(self, budget_queries=None, budget_seconds=None,
            minimize: bool = True) -> dict:
        """Fuzz until a budget is exhausted; returns a summary dict."""
        if budget_queries is None and budget_seconds is None:
            budget_queries = 100
        deadline = (
            time.monotonic() + budget_seconds
            if budget_seconds is not None else None
        )
        executed = 0
        while True:
            if budget_queries is not None and executed >= budget_queries:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            tables = gen_tables(self.rng)
            generator = QueryGen(self.rng, tables)
            for _ in range(self.queries_per_scenario):
                if budget_queries is not None and executed >= budget_queries:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                query = generator.query()
                scenario = Scenario(tables, query)
                classification, detail = run_scenario_query(scenario)
                executed += 1
                self.metrics.incr("fuzz_queries")
                if classification != "ok":
                    self.metrics.incr("fuzz_divergences")
                    self._report(scenario, classification, detail, minimize)
        return {
            "seed": self.seed,
            "queries": executed,
            "divergences": len(self.divergences),
            "classifications": sorted(
                {d.classification for d in self.divergences}
            ),
        }

    def _report(self, scenario, classification, detail, minimize) -> None:
        if minimize:
            scenario = shrink_mod.shrink_scenario(
                scenario, classification, run_scenario_query
            )
            # re-derive the detail for the minimized case
            classification, detail = run_scenario_query(scenario)
        sql = scenario.query.render()
        divergence = Divergence(classification, sql, scenario, detail)
        self.divergences.append(divergence)
        if self.corpus_dir is not None:
            self._write_corpus(divergence)

    def _write_corpus(self, divergence: Divergence) -> None:
        import os

        os.makedirs(self.corpus_dir, exist_ok=True)
        digest = hashlib.sha1(divergence.sql.encode()).hexdigest()[:10]
        name = f"div_{divergence.classification}_{digest}.sql"
        path = os.path.join(self.corpus_dir, name)
        mode = (
            "ordered" if divergence.scenario.query.ordered_all else "multiset"
        )
        lines = [
            "-- repro.fuzz minimized reproducer",
            f"-- classification: {divergence.classification}",
            f"-- compare: {mode}",
            f"-- seed: {self.seed}",
            f"-- detail: {divergence.detail}" if divergence.detail else None,
        ]
        for statement in divergence.scenario.setup_statements():
            lines.append(statement + ";")
        lines.append(divergence.sql + ";")
        with open(path, "w") as handle:
            handle.write(
                "\n".join(line for line in lines if line is not None) + "\n"
            )
