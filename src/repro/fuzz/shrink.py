"""Delta-debugging minimizer for failing fuzz scenarios.

Repeatedly proposes structurally smaller variants of a failing scenario
(fewer rows, fewer tables/columns, simpler query clauses, simpler
expressions) and keeps any variant that still reproduces the *same*
divergence classification.  Runs to a fixpoint under a hard budget of
re-executions, so minimization stays time-bounded even for scenarios
that shrink slowly.
"""

from __future__ import annotations

import re

from repro.fuzz import grammar as G
from repro.fuzz.schema import Scenario, TableInfo

__all__ = ["shrink_scenario", "query_shrinks"]

#: hard cap on re-executions per minimization, keeping the fuzz loop fast
_MAX_CHECKS = 250


def shrink_scenario(scenario: Scenario, classification: str, run) -> Scenario:
    """Smallest variant of ``scenario`` with the same classification.

    ``run(scenario)`` must return ``(classification, detail)``.
    """
    budget = [_MAX_CHECKS]

    def still_fails(candidate: Scenario) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            got, _ = run(candidate)
        except Exception:  # noqa: BLE001 — a broken candidate is just "no"
            return False
        return got == classification

    current = scenario
    progress = True
    while progress and budget[0] > 0:
        progress = False
        for candidate in _candidates(current):
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


def _candidates(scenario: Scenario):
    """Propose simpler scenario variants, most aggressive first."""
    sql = scenario.query.render()
    # 1. drop tables the query never mentions
    used = [
        t for t in scenario.tables
        if re.search(rf"\b{re.escape(t.name)}\b", sql)
    ]
    if len(used) < len(scenario.tables):
        yield Scenario(used, scenario.query)
    # 2. halve / trim table data
    for index, table in enumerate(scenario.tables):
        n = len(table.rows)
        if n == 0:
            continue
        slices = [table.rows[: n // 2], table.rows[n // 2:]]
        if n <= 8:
            slices.extend(
                table.rows[:i] + table.rows[i + 1:] for i in range(n)
            )
        for rows in slices:
            if len(rows) == n:
                continue
            replacement = TableInfo(table.name, table.columns, rows)
            tables = list(scenario.tables)
            tables[index] = replacement
            yield Scenario(tables, scenario.query)
    # 3. drop columns the query never mentions
    for index, table in enumerate(scenario.tables):
        if len(table.columns) <= 1:
            continue
        for ci, column in enumerate(table.columns):
            if re.search(rf"\b{re.escape(column.name)}\b", sql):
                continue
            columns = table.columns[:ci] + table.columns[ci + 1:]
            rows = [row[:ci] + row[ci + 1:] for row in table.rows]
            tables = list(scenario.tables)
            tables[index] = TableInfo(table.name, columns, rows)
            yield Scenario(tables, scenario.query)
            break  # one column at a time; re-proposed next round
    # 4. simplify the query itself
    for query in query_shrinks(scenario.query):
        yield Scenario(scenario.tables, query)


def query_shrinks(query):
    """Structurally simpler variants of a query, most aggressive first."""
    if isinstance(query, G.WithQuery):
        # inline the CTE as a derived table — same semantics, one less
        # construct — and shrink each half in place
        if (
            isinstance(query.body, G.Select)
            and isinstance(query.body.from_, G.FromTable)
            and query.body.from_.name == query.name
        ):
            inlined = query.body.copy()
            inlined.from_ = G.FromSub(query.cte, query.name)
            yield inlined
        yield query.cte
        for replacement in query_shrinks(query.body):
            if isinstance(replacement, G.Select):
                yield G.WithQuery(query.name, query.cte, replacement)
        for replacement in query_shrinks(query.cte):
            if isinstance(replacement, G.Select):
                yield G.WithQuery(query.name, replacement, query.body)
        return
    if isinstance(query, G.SetQuery):
        yield query.left
        yield query.right
        if query.limit is not None:
            variant = query.copy()
            variant.limit, variant.offset = None, 0
            yield variant
        if query.order:
            variant = query.copy()
            variant.order, variant.limit, variant.offset = None, None, 0
            yield variant
        for replacement in query_shrinks(query.left):
            variant = query.copy()
            variant.left = replacement
            yield variant
        for replacement in query_shrinks(query.right):
            variant = query.copy()
            variant.right = replacement
            yield variant
        return
    if not isinstance(query, G.Select):
        return
    # replace a FROM-subquery by the subquery itself, or simplify it
    if isinstance(query.from_, G.FromSub):
        yield query.from_.select
        for replacement in query_shrinks(query.from_.select):
            variant = query.copy()
            variant.from_ = G.FromSub(replacement, query.from_.alias)
            yield variant
    # drop whole clauses
    if query.having is not None:
        yield _with(query, having=None)
    if query.where is not None:
        yield _with(query, where=None)
    if query.order:
        yield _with(query, order=None, limit=None, offset=0)
    if query.limit is not None:
        yield _with(query, limit=None, offset=0)
    if query.distinct:
        yield _with(query, distinct=False)
    # drop one select item (keeping group keys consistent)
    if len(query.items) > 1:
        for i in range(len(query.items) - 1, -1, -1):
            if query.group and i in query.group and len(query.group) == 1:
                continue  # cannot drop the only group key
            items = query.items[:i] + query.items[i + 1:]
            group = None
            if query.group:
                group = [g - (g > i) for g in query.group if g != i]
            order = None
            if query.order:
                order = [
                    (p - (p > i), d, nf)
                    for p, d, nf in query.order if p != i
                ]
            variant = query.copy()
            variant.items = items
            variant.group = group
            variant.order = order
            yield variant
    # simplify the WHERE predicate
    if query.where is not None:
        for predicate in G.pred_shrinks(query.where):
            yield _with(query, where=predicate)
    # drop FILTER clauses from aggregate items
    for i, item in enumerate(query.items):
        if isinstance(item, G.Agg) and item.filter is not None:
            variant = query.copy()
            variant.items = list(query.items)
            variant.items[i] = G.Agg(item.func, item.arg, item.distinct,
                                     item.tag, item.bound)
            yield variant
    # simplify individual item expressions (skip aggregates / group keys)
    for i, item in enumerate(query.items):
        if isinstance(item, G.Agg) or (query.group and i in query.group):
            continue
        for replacement in G.expr_shrinks(item):
            variant = query.copy()
            variant.items = list(query.items)
            variant.items[i] = replacement
            yield variant


def _with(query, **overrides):
    variant = query.copy()
    for key, value in overrides.items():
        setattr(variant, key, value)
    return variant
