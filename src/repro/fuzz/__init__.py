"""Differential SQL fuzzer: repro vs a SQLite oracle.

The paper's evaluation uses SQLite as the embedded baseline; this package
turns that baseline into a standing correctness harness.  A seeded
generator produces schemas, data, and queries in the common dialect of
both engines, replays each query against both, and reports any divergence
as a minimized, replayable ``.sql`` corpus file.

Run it with ``python -m repro.fuzz --seed 5 --budget-seconds 60``.
"""

from repro.fuzz.compare import (
    diff_classification,
    normalize_rows,
    rows_equivalent,
)
from repro.fuzz.grammar import QueryGen
from repro.fuzz.runner import Fuzzer, classify, execute_pair
from repro.fuzz.schema import Scenario, gen_tables
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "Fuzzer",
    "QueryGen",
    "Scenario",
    "classify",
    "diff_classification",
    "execute_pair",
    "gen_tables",
    "normalize_rows",
    "rows_equivalent",
    "shrink_scenario",
]
