"""CLI driver: ``python -m repro.fuzz``."""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.runner import Fuzzer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential SQL fuzzing of repro against SQLite.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    parser.add_argument("--budget-queries", type=int, default=None,
                        help="stop after this many generated queries")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="stop after this much wall-clock time")
    parser.add_argument("--corpus", default="tests/fuzz_corpus",
                        help="directory for minimized .sql reproducers "
                             "(default tests/fuzz_corpus)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without delta-debugging")
    args = parser.parse_args(argv)

    fuzzer = Fuzzer(seed=args.seed, corpus_dir=args.corpus)
    summary = fuzzer.run(
        budget_queries=args.budget_queries,
        budget_seconds=args.budget_seconds,
        minimize=not args.no_minimize,
    )
    print(
        f"fuzz: seed={summary['seed']} queries={summary['queries']} "
        f"divergences={summary['divergences']}"
    )
    for divergence in fuzzer.divergences:
        print(f"  [{divergence.classification}] {divergence.sql}")
        if divergence.detail:
            print(f"      {divergence.detail}")
    return 1 if fuzzer.divergences else 0


if __name__ == "__main__":
    sys.exit(main())
