"""Random schema + data generation for differential fuzzing.

Tables are created from the same DDL text in both engines: repro parses
the declared types exactly, while SQLite maps them onto its affinities
(INTEGER/BIGINT -> INTEGER, DOUBLE -> REAL, DECIMAL -> NUMERIC,
VARCHAR -> TEXT, DATE -> NUMERIC holding ISO-8601 text).  Data values are
deliberately tame — small integer magnitudes, short lowercase strings,
few-digit decimals — so that every divergence the harness reports is an
engine bug, not an arithmetic-range or collation artifact (see the
dialect-gap rules in DESIGN.md).
"""

from __future__ import annotations

import datetime
import string

__all__ = [
    "INT",
    "FLOAT",
    "STR",
    "DATE",
    "ColumnInfo",
    "TableInfo",
    "Scenario",
    "gen_tables",
    "gen_rows",
    "render_literal",
]

# type tags used throughout the fuzzer (SQL declared types map onto these)
INT = "int"
FLOAT = "float"
STR = "str"
DATE = "date"

#: declared SQL type per (tag, variant): the same text works in both engines
_DECLS = {
    (INT, 0): "INTEGER",
    (INT, 1): "BIGINT",
    (FLOAT, 0): "DOUBLE",
    (FLOAT, 1): "DECIMAL(8,2)",
    (STR, 0): "VARCHAR(16)",
    (DATE, 0): "DATE",
}

_EPOCH = datetime.date(2015, 1, 1)


class ColumnInfo:
    """One generated column: SQL name, declared type, fuzz type tag."""

    __slots__ = ("name", "decl", "tag", "bound")

    def __init__(self, name: str, decl: str, tag: str, bound: int):
        self.name = name
        self.decl = decl
        self.tag = tag
        #: magnitude bound of stored values (INT columns only) — the
        #: expression generator uses it to keep arithmetic off the
        #: int32/int64 overflow cliffs where the engines diverge
        self.bound = bound


class TableInfo:
    """One generated table plus its rows (Python-value tuples)."""

    __slots__ = ("name", "columns", "rows")

    def __init__(self, name: str, columns: list, rows: list):
        self.name = name
        self.columns = columns
        self.rows = rows

    def ddl(self) -> str:
        cols = ", ".join(f"{c.name} {c.decl}" for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"

    def insert_sql(self) -> str | None:
        if not self.rows:
            return None
        tuples = ", ".join(
            "(" + ", ".join(
                render_literal(v, c.tag) for v, c in zip(row, self.columns)
            ) + ")"
            for row in self.rows
        )
        return f"INSERT INTO {self.name} VALUES {tuples}"


class Scenario:
    """A full replayable fuzz case: tables + data + one query."""

    __slots__ = ("tables", "query")

    def __init__(self, tables: list, query):
        self.tables = tables
        self.query = query

    def setup_statements(self) -> list:
        statements = []
        for table in self.tables:
            statements.append(table.ddl())
            insert = table.insert_sql()
            if insert is not None:
                statements.append(insert)
        return statements


def render_literal(value, tag: str) -> str:
    """SQL literal text valid in both dialects."""
    if value is None:
        return "NULL"
    if tag == INT:
        return str(int(value))
    if tag == FLOAT:
        return f"{value:.4f}".rstrip("0").rstrip(".") if value % 1 else str(int(value))
    if tag in (STR, DATE):
        return f"'{value}'"
    raise ValueError(f"unknown tag {tag!r}")


def _random_value(rng, column: ColumnInfo):
    if rng.random() < 0.18:
        return None
    if column.tag == INT:
        return rng.randint(-column.bound, column.bound)
    if column.tag == FLOAT:
        # two fractional digits: exactly representable after parsing in
        # both engines' storage (scaled int64 / IEEE double)
        return rng.randint(-9999, 9999) / 100.0
    if column.tag == STR:
        n = rng.randint(1, 7)
        return "".join(rng.choice(string.ascii_lowercase) for _ in range(n))
    if column.tag == DATE:
        return (_EPOCH + datetime.timedelta(days=rng.randint(0, 3650))).isoformat()
    raise ValueError(f"unknown tag {column.tag!r}")


def gen_rows(rng, columns: list) -> list:
    """Rows for one table; occasionally none, to cover empty-input paths."""
    if rng.random() < 0.10:
        return []
    nrows = rng.randint(1, 42)
    return [
        tuple(_random_value(rng, column) for column in columns)
        for _ in range(nrows)
    ]


def gen_tables(rng) -> list:
    """2-3 tables of 2-6 columns each, with data."""
    tables = []
    tags = list(_DECLS)
    for t in range(rng.randint(2, 3)):
        columns = []
        ncols = rng.randint(2, 6)
        # always lead with an INTEGER column so joins/set ops have keys
        chosen = [(INT, 0)] + [rng.choice(tags) for _ in range(ncols - 1)]
        for i, (tag, variant) in enumerate(chosen):
            bound = (50 if variant == 0 else 1_000_000) if tag == INT else 0
            columns.append(
                ColumnInfo(f"c{i}", _DECLS[(tag, variant)], tag, bound)
            )
        tables.append(TableInfo(f"t{t}", columns, gen_rows(rng, columns)))
    return tables
