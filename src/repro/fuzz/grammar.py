"""Seeded random query generator over the repro/SQLite common dialect.

The grammar only emits constructs with identical semantics in both
engines (see DESIGN.md "dialect-gap rules" for what is deliberately
excluded and why).  Queries are built as small AST objects rather than
strings so the shrinker can delta-debug a failing query structurally:
every node knows how to ``render()`` itself and how to propose simpler
replacements of the same type.
"""

from __future__ import annotations

from repro.fuzz.schema import DATE, FLOAT, INT, STR

__all__ = [
    "Lit",
    "Col",
    "Bin",
    "Func",
    "Case",
    "Cast",
    "Agg",
    "WinCall",
    "Cmp",
    "Between",
    "InList",
    "InSubquery",
    "IsNull",
    "IsDistinct",
    "Like",
    "BoolOp",
    "Not",
    "Exists",
    "Select",
    "SetQuery",
    "WithQuery",
    "FromTable",
    "FromJoin",
    "FromSub",
    "QueryGen",
    "expr_shrinks",
    "pred_shrinks",
]

_DEFAULT_LIT = {
    INT: ("1", 1),
    FLOAT: ("0.5", 0),
    STR: ("'a'", 0),
    DATE: ("'2020-01-01'", 0),
}


# -- scalar expressions -----------------------------------------------------------


class Lit:
    __slots__ = ("sql", "tag", "bound")

    def __init__(self, sql: str, tag: str, bound: int = 0):
        self.sql = sql
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return self.sql

    def children(self) -> list:
        return []


class Col:
    __slots__ = ("name", "tag", "bound")

    def __init__(self, name: str, tag: str, bound: int = 0):
        self.name = name
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return self.name

    def children(self) -> list:
        return []


class Bin:
    __slots__ = ("op", "left", "right", "tag", "bound")

    def __init__(self, op: str, left, right, tag: str, bound: int = 0):
        self.op = op
        self.left = left
        self.right = right
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def children(self) -> list:
        return [self.left, self.right]


class Func:
    __slots__ = ("name", "args", "tag", "bound")

    def __init__(self, name: str, args: list, tag: str, bound: int = 0):
        self.name = name
        self.args = args
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return f"{self.name}({', '.join(a.render() for a in self.args)})"

    def children(self) -> list:
        return list(self.args)


class Case:
    __slots__ = ("pred", "then", "els", "tag", "bound")

    def __init__(self, pred, then, els, tag: str, bound: int = 0):
        self.pred = pred
        self.then = then
        self.els = els
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return (
            f"CASE WHEN {self.pred.render()} THEN {self.then.render()}"
            f" ELSE {self.els.render()} END"
        )

    def children(self) -> list:
        return [self.then, self.els]


class Cast:
    __slots__ = ("arg", "decl", "tag", "bound")

    def __init__(self, arg, decl: str, tag: str, bound: int = 0):
        self.arg = arg
        self.decl = decl
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        return f"CAST({self.arg.render()} AS {self.decl})"

    def children(self) -> list:
        return []


class Agg:
    """An aggregate call; ``arg`` is None for COUNT(*).

    ``filter`` is an optional subquery-free predicate rendered as a
    standard ``FILTER (WHERE ...)`` clause.
    """

    __slots__ = ("func", "arg", "distinct", "tag", "bound", "filter")

    def __init__(self, func: str, arg, distinct: bool, tag: str,
                 bound: int = 0, filter=None):
        self.func = func
        self.arg = arg
        self.distinct = distinct
        self.tag = tag
        self.bound = bound
        self.filter = filter

    def render(self) -> str:
        if self.arg is None:
            base = "COUNT(*)"
        else:
            inner = self.arg.render()
            if self.distinct:
                inner = f"DISTINCT {inner}"
            base = f"{self.func}({inner})"
        if self.filter is not None:
            base += f" FILTER (WHERE {self.filter.render()})"
        return base

    def children(self) -> list:
        return []


class WinCall:
    """A window-function call: ``func(arg) OVER (...)`` select item.

    ``order`` lists ``(col, desc, nulls_first)`` and always renders the
    NULLS placement explicitly (the engines' bare defaults differ).
    ``frame`` is pre-rendered frame SQL (``ROWS BETWEEN ...``) or None.
    The generator only emits deterministic combinations: ranking and
    ROWS frames come with a total order over every table column, while
    RANGE-framed running aggregates are tie-stable by construction.
    """

    __slots__ = ("func", "arg", "partition", "order", "frame", "tag", "bound")

    def __init__(self, func: str, arg, partition: list, order: list,
                 frame, tag: str, bound: int = 0):
        self.func = func
        self.arg = arg
        self.partition = partition
        self.order = order
        self.frame = frame
        self.tag = tag
        self.bound = bound

    def render(self) -> str:
        if self.arg is None:
            call = "COUNT(*)" if self.func == "COUNT" else f"{self.func}()"
        else:
            call = f"{self.func}({self.arg.render()})"
        clauses = []
        if self.partition:
            clauses.append(
                "PARTITION BY "
                + ", ".join(c.render() for c in self.partition)
            )
        if self.order:
            clauses.append(
                "ORDER BY "
                + ", ".join(
                    f"{c.render()} {'DESC' if desc else 'ASC'}"
                    f" NULLS {'FIRST' if nulls_first else 'LAST'}"
                    for c, desc, nulls_first in self.order
                )
            )
        if self.frame is not None:
            clauses.append(self.frame)
        return f"{call} OVER ({' '.join(clauses)})"

    def children(self) -> list:
        return []


# -- predicates -------------------------------------------------------------------


class Cmp:
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left, right):
        self.op = op
        self.left = left
        self.right = right

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


class Between:
    __slots__ = ("expr", "lo", "hi")

    def __init__(self, expr, lo, hi):
        self.expr = expr
        self.lo = lo
        self.hi = hi

    def render(self) -> str:
        return (
            f"{self.expr.render()} BETWEEN {self.lo.render()}"
            f" AND {self.hi.render()}"
        )


class InList:
    __slots__ = ("expr", "values", "negated")

    def __init__(self, expr, values: list, negated: bool):
        self.expr = expr
        self.values = values
        self.negated = negated

    def render(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return (
            f"{self.expr.render()} {op}"
            f" ({', '.join(v.render() for v in self.values)})"
        )


class InSubquery:
    """``expr [NOT] IN (SELECT item FROM ...)`` membership predicate.

    The inner select may carry ORDER BY + LIMIT; the generator always
    orders by the selected item itself, so the *value set* of the first
    k rows is deterministic even when rows tie on the sort key.
    """

    __slots__ = ("expr", "select", "negated")

    def __init__(self, expr, select, negated: bool):
        self.expr = expr
        self.select = select
        self.negated = negated

    def render(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.expr.render()} {op} ({self.select.render()})"


class IsDistinct:
    """``a IS [NOT] DISTINCT FROM b`` — NULL-safe comparison, never NULL."""

    __slots__ = ("left", "right", "negated")

    def __init__(self, left, right, negated: bool):
        self.left = left
        self.right = right
        self.negated = negated

    def render(self) -> str:
        op = "IS NOT DISTINCT FROM" if self.negated else "IS DISTINCT FROM"
        return f"{self.left.render()} {op} {self.right.render()}"


class Exists:
    """``[NOT] EXISTS (SELECT ...)``, uncorrelated.

    Doubles as a select item (both dialects yield a 0/1-ish value the
    comparator normalizes), so it carries an expression ``tag``.
    """

    __slots__ = ("select", "negated", "tag", "bound")

    def __init__(self, select, negated: bool):
        self.select = select
        self.negated = negated
        self.tag = INT
        self.bound = 1

    def render(self) -> str:
        return f"{'NOT ' if self.negated else ''}EXISTS ({self.select.render()})"

    def children(self) -> list:
        return []


class IsNull:
    __slots__ = ("expr", "negated")

    def __init__(self, expr, negated: bool):
        self.expr = expr
        self.negated = negated

    def render(self) -> str:
        return f"{self.expr.render()} IS {'NOT ' if self.negated else ''}NULL"


class Like:
    __slots__ = ("expr", "pattern", "negated")

    def __init__(self, expr, pattern: str, negated: bool):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated

    def render(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.expr.render()} {op} '{self.pattern}'"


class BoolOp:
    __slots__ = ("op", "parts")

    def __init__(self, op: str, parts: list):
        self.op = op
        self.parts = parts

    def render(self) -> str:
        joined = f" {self.op} ".join(f"({p.render()})" for p in self.parts)
        return joined


class Not:
    __slots__ = ("pred",)

    def __init__(self, pred):
        self.pred = pred

    def render(self) -> str:
        return f"NOT ({self.pred.render()})"


# -- FROM clauses -----------------------------------------------------------------


class FromTable:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def render(self) -> str:
        return self.name


class FromJoin:
    """Comma join of two tables with an equality predicate on INT keys."""

    __slots__ = ("left", "lalias", "right", "ralias", "pred")

    def __init__(self, left: str, lalias: str, right: str, ralias: str, pred):
        self.left = left
        self.lalias = lalias
        self.right = right
        self.ralias = ralias
        self.pred = pred

    def render(self) -> str:
        return f"{self.left} {self.lalias}, {self.right} {self.ralias}"


class FromOuterJoin:
    """Explicit ``LEFT``/``INNER`` JOIN with its predicate in the ON clause."""

    __slots__ = ("left", "lalias", "right", "ralias", "pred", "kind")

    def __init__(self, left, lalias, right, ralias, pred, kind="LEFT"):
        self.left = left
        self.lalias = lalias
        self.right = right
        self.ralias = ralias
        self.pred = pred
        self.kind = kind

    def render(self) -> str:
        return (
            f"{self.left} {self.lalias} {self.kind} JOIN "
            f"{self.right} {self.ralias} ON {self.pred.render()}"
        )


class FromSub:
    __slots__ = ("select", "alias")

    def __init__(self, select, alias: str):
        self.select = select
        self.alias = alias

    def render(self) -> str:
        return f"({self.select.render()}) {self.alias}"


# -- queries ----------------------------------------------------------------------


class Select:
    """One SELECT block.  ``order`` lists (item_index, desc, nulls_first);
    ``ordered_all`` means the ORDER BY covers every output column, which
    lets the comparator check row order (and makes LIMIT deterministic).
    """

    __slots__ = (
        "items",
        "from_",
        "where",
        "group",
        "having",
        "order",
        "limit",
        "offset",
        "distinct",
        "aliased",
    )

    def __init__(self, items, from_, where=None, group=None, having=None,
                 order=None, limit=None, offset=0, distinct=False,
                 aliased=False):
        self.items = items  # list of expression nodes
        self.from_ = from_  # None | FromTable | FromJoin | FromSub
        self.where = where
        self.group = group  # list of item indexes that are group keys
        self.having = having
        self.order = order  # list of (item_index, desc, nulls_first)
        self.limit = limit
        self.offset = offset
        self.distinct = distinct
        self.aliased = aliased  # render items as "expr AS cN"

    @property
    def ordered_all(self) -> bool:
        if not self.order:
            return False
        return {index for index, _, _ in self.order} == set(
            range(len(self.items))
        )

    def render(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        rendered_items = []
        for i, item in enumerate(self.items):
            text = item.render()
            if self.aliased:
                text += f" AS c{i}"
            rendered_items.append(text)
        parts.append(", ".join(rendered_items))
        where = self.where
        if self.from_ is not None:
            parts.append(f"FROM {self.from_.render()}")
            if isinstance(self.from_, FromJoin):
                join_pred = self.from_.pred
                where = (
                    join_pred if where is None
                    else BoolOp("AND", [join_pred, where])
                )
        if where is not None:
            parts.append(f"WHERE {where.render()}")
        if self.group:
            keys = ", ".join(self.items[i].render() for i in self.group)
            parts.append(f"GROUP BY {keys}")
        if self.having is not None:
            parts.append(f"HAVING {self.having.render()}")
        if self.order:
            keys = ", ".join(
                f"{self.items[i].render()}"
                f" {'DESC' if desc else 'ASC'}"
                f" NULLS {'FIRST' if nulls_first else 'LAST'}"
                for i, desc, nulls_first in self.order
            )
            parts.append(f"ORDER BY {keys}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
            if self.offset:
                parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)

    def copy(self) -> "Select":
        return Select(
            list(self.items), self.from_, self.where,
            list(self.group) if self.group else None, self.having,
            list(self.order) if self.order else None, self.limit,
            self.offset, self.distinct, self.aliased,
        )


class SetQuery:
    """Set operation, optionally with a statement-level ORDER BY/LIMIT.

    ``order`` lists (ordinal_index, desc, nulls_first) over the combined
    output columns and renders as 1-based ordinals — the only spelling
    both dialects resolve identically against set-op output.
    """

    __slots__ = ("op", "left", "right", "order", "limit", "offset")

    def __init__(self, op: str, left: Select, right: Select,
                 order=None, limit=None, offset: int = 0):
        self.op = op  # "UNION" | "UNION ALL" | "INTERSECT" | "EXCEPT"
        self.left = left
        self.right = right
        self.order = order  # list of (ordinal_index, desc, nulls_first)
        self.limit = limit
        self.offset = offset

    @property
    def ordered_all(self) -> bool:
        if not self.order:
            return False
        return {index for index, _, _ in self.order} == set(
            range(len(self.left.items))
        )

    def render(self) -> str:
        parts = [f"{self.left.render()} {self.op} {self.right.render()}"]
        if self.order:
            keys = ", ".join(
                f"{index + 1} {'DESC' if desc else 'ASC'}"
                f" NULLS {'FIRST' if nulls_first else 'LAST'}"
                for index, desc, nulls_first in self.order
            )
            parts.append(f"ORDER BY {keys}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
            if self.offset:
                parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)

    def copy(self) -> "SetQuery":
        return SetQuery(
            self.op, self.left, self.right,
            list(self.order) if self.order else None,
            self.limit, self.offset,
        )


class WithQuery:
    """``WITH name AS (cte) body`` — one non-recursive CTE.

    The CTE select is aliased (columns ``c0..``), the body references it
    as a plain table; comparison semantics follow the body.
    """

    __slots__ = ("name", "cte", "body")

    def __init__(self, name: str, cte: Select, body: Select):
        self.name = name
        self.cte = cte
        self.body = body

    @property
    def ordered_all(self) -> bool:
        return self.body.ordered_all

    def render(self) -> str:
        return f"WITH {self.name} AS ({self.cte.render()}) {self.body.render()}"

    def copy(self) -> "WithQuery":
        return WithQuery(self.name, self.cte, self.body)


# -- structural shrinking ---------------------------------------------------------


def expr_shrinks(expr) -> list:
    """Simpler same-typed replacements for one expression node."""
    out = [c for c in expr.children() if c.tag == expr.tag]
    if not isinstance(expr, (Lit, Col)):
        sql, bound = _DEFAULT_LIT[expr.tag]
        out.append(Lit(sql, expr.tag, bound))
    return out


def pred_shrinks(pred) -> list:
    """Simpler replacements for one predicate node."""
    if isinstance(pred, BoolOp):
        return list(pred.parts)
    if isinstance(pred, Not):
        return [pred.pred]
    out = []
    if isinstance(pred, Cmp):
        for side in ("left", "right"):
            for replacement in expr_shrinks(getattr(pred, side)):
                clone = Cmp(pred.op, pred.left, pred.right)
                setattr(clone, side, replacement)
                out.append(clone)
    if isinstance(pred, InSubquery):
        inner = pred.select
        if inner.where is not None:
            variant = inner.copy()
            variant.where = None
            out.append(InSubquery(pred.expr, variant, pred.negated))
        if inner.limit is not None:
            variant = inner.copy()
            variant.order, variant.limit, variant.offset = None, None, 0
            out.append(InSubquery(pred.expr, variant, pred.negated))
        for replacement in expr_shrinks(pred.expr):
            out.append(InSubquery(replacement, pred.select, pred.negated))
    if isinstance(pred, IsDistinct):
        for side in ("left", "right"):
            for replacement in expr_shrinks(getattr(pred, side)):
                clone = IsDistinct(pred.left, pred.right, pred.negated)
                setattr(clone, side, replacement)
                out.append(clone)
    if isinstance(pred, Exists):
        inner = pred.select
        if inner.where is not None:
            variant = inner.copy()
            variant.where = None
            out.append(Exists(variant, pred.negated))
    return out


# -- the generator ----------------------------------------------------------------

#: int expressions never exceed this magnitude, keeping well inside
#: int32 — where repro's INTEGER arithmetic would wrap but SQLite's
#: always-int64 arithmetic would not (a documented dialect gap)
_INT_CEILING = 1_000_000_000


class QueryGen:
    """Seeded query generator over a fixed set of tables."""

    def __init__(self, rng, tables: list):
        self.rng = rng
        self.tables = tables

    # -- helpers ------------------------------------------------------------------

    def _columns(self, table, tag=None, prefix: str = "") -> list:
        out = []
        for column in table.columns:
            if tag is None or column.tag == tag:
                out.append(
                    Col(prefix + column.name, column.tag, column.bound)
                )
        return out

    def _literal(self, tag: str) -> Lit:
        rng = self.rng
        if tag == INT:
            value = rng.randint(-20, 20)
            return Lit(str(value), INT, abs(value))
        if tag == FLOAT:
            return Lit(f"{rng.randint(-999, 999) / 100.0:.2f}", FLOAT)
        if tag == STR:
            n = rng.randint(1, 4)
            s = "".join(
                rng.choice("abcdefghij") for _ in range(n)
            )
            return Lit(f"'{s}'", STR)
        if tag == DATE:
            year = rng.randint(2015, 2024)
            month = rng.randint(1, 12)
            day = rng.randint(1, 28)
            return Lit(f"'{year:04d}-{month:02d}-{day:02d}'", DATE)
        raise ValueError(tag)

    # -- expressions --------------------------------------------------------------

    def expr(self, tag: str, cols: list, depth: int, exact: bool = False):
        """Random expression of type ``tag`` over ``cols``.

        ``exact`` restricts FLOAT expressions to plain columns/literals:
        computed floats are only comparable with tolerance, so they may
        not feed predicates, DISTINCT, GROUP BY, or set operations.
        """
        rng = self.rng
        candidates = [c for c in cols if c.tag == tag]
        if depth <= 0 or (tag == FLOAT and exact):
            if candidates and rng.random() < 0.7:
                return rng.choice(candidates)
            return self._literal(tag)
        roll = rng.random()
        if tag == INT:
            return self._int_expr(roll, cols, candidates, depth, exact)
        if tag == FLOAT:
            return self._float_expr(roll, cols, candidates, depth)
        if tag == STR:
            return self._str_expr(roll, cols, candidates, depth, exact)
        # DATE: no cross-dialect date arithmetic — columns and literals only
        if candidates and roll < 0.7:
            return rng.choice(candidates)
        return self._literal(DATE)

    def _int_expr(self, roll, cols, candidates, depth, exact):
        rng = self.rng
        if roll < 0.30:
            if candidates and rng.random() < 0.75:
                return rng.choice(candidates)
            return self._literal(INT)
        if roll < 0.62:
            op = rng.choice(["+", "-", "*", "/", "%"])
            left = self.expr(INT, cols, depth - 1, exact)
            if op in ("/", "%"):
                divisor = rng.randint(2, 9)  # nonzero constant divisor
                return Bin(op, left, Lit(str(divisor), INT, divisor),
                           INT, left.bound)
            right = self.expr(INT, cols, depth - 1, exact)
            if op == "*":
                if left.bound * max(right.bound, 1) > _INT_CEILING:
                    op = "+"
                else:
                    return Bin("*", left, right, INT,
                               left.bound * max(right.bound, 1))
            bound = left.bound + right.bound
            if bound > _INT_CEILING:
                return left
            return Bin(op, left, right, INT, bound)
        if roll < 0.72:
            arg = self.expr(INT, cols, depth - 1, exact)
            return Func("abs", [arg], INT, arg.bound)
        if roll < 0.80:
            arg = self.expr(STR, cols, depth - 1, exact)
            return Func("length", [arg], INT, 64)
        if roll < 0.88:
            pred = self.pred(cols, depth - 1)
            then = self.expr(INT, cols, depth - 1, exact)
            els = self.expr(INT, cols, depth - 1, exact)
            return Case(pred, then, els, INT, max(then.bound, els.bound))
        if roll < 0.92 and candidates:
            column = rng.choice(candidates)
            literal = self._literal(INT)
            return Func("coalesce", [column, literal], INT,
                        max(column.bound, literal.bound))
        if roll < 0.96:
            arg = self.expr(INT, cols, depth - 1, exact)
            return Func("NULLIF", [arg, self._literal(INT)], INT, arg.bound)
        # truncating CAST: identical toward-zero semantics in both engines
        arg = self.expr(FLOAT, cols, 0, exact=True)
        return Cast(arg, "INTEGER", INT, 10_000)

    def _float_expr(self, roll, cols, candidates, depth):
        rng = self.rng
        if roll < 0.35:
            if candidates and rng.random() < 0.75:
                return rng.choice(candidates)
            return self._literal(FLOAT)
        if roll < 0.75:
            op = rng.choice(["+", "-", "*"])
            left = self.expr(FLOAT, cols, depth - 1)
            right = self.expr(FLOAT, cols, depth - 1)
            return Bin(op, left, right, FLOAT)
        if roll < 0.85:
            name = rng.choice(["abs", "floor", "ceil"])
            return Func(name, [self.expr(FLOAT, cols, depth - 1)], FLOAT)
        if roll < 0.93:
            pred = self.pred(cols, depth - 1)
            return Case(pred, self.expr(FLOAT, cols, depth - 1),
                        self.expr(FLOAT, cols, depth - 1), FLOAT)
        # ints are floats too — but cast, so the enclosing arithmetic
        # runs in DOUBLE in both engines (not int32 vs int64)
        return Cast(self.expr(INT, cols, depth - 1), "DOUBLE", FLOAT)

    def _str_expr(self, roll, cols, candidates, depth, exact):
        rng = self.rng
        if roll < 0.40:
            if candidates and rng.random() < 0.75:
                return rng.choice(candidates)
            return self._literal(STR)
        if roll < 0.60:
            return Bin("||", self.expr(STR, cols, depth - 1, exact),
                       self.expr(STR, cols, depth - 1, exact), STR)
        if roll < 0.80:
            name = rng.choice(["upper", "lower", "trim"])
            return Func(name, [self.expr(STR, cols, depth - 1, exact)], STR)
        if roll < 0.92:
            start = rng.randint(1, 3)
            count = rng.randint(1, 5)
            return Func(
                "substr",
                [self.expr(STR, cols, depth - 1, exact),
                 Lit(str(start), INT, start), Lit(str(count), INT, count)],
                STR,
            )
        if candidates:
            return Func("coalesce", [rng.choice(candidates),
                                     self._literal(STR)], STR)
        return self._literal(STR)

    # -- predicates ---------------------------------------------------------------

    def pred(self, cols: list, depth: int, where: bool = False):
        """Random predicate; ``where`` marks a WHERE position, where
        subquery predicates are most frequent — the engine also accepts
        them under OR/NOT and inside CASE, so they appear (more rarely)
        in every predicate position."""
        rng = self.rng
        roll = rng.random()
        if depth > 0 and roll < 0.22:
            op = rng.choice(["AND", "OR"])
            parts = [self.pred(cols, depth - 1, where and op == "AND")
                     for _ in range(2)]
            return BoolOp(op, parts)
        if depth > 0 and roll < 0.30:
            return Not(self.pred(cols, depth - 1))
        kind = rng.random()
        str_cols = [c for c in cols if c.tag == STR]
        date_cols = [c for c in cols if c.tag == DATE]
        float_cols = [c for c in cols if c.tag == FLOAT]
        if kind < 0.34:
            return self._comparison(cols, depth)
        if kind < 0.42:
            pool = [c for c in cols if c.tag in (INT, STR)]
            if pool:
                column = rng.choice(pool)
                peers = [c for c in pool if c.tag == column.tag]
                pick = rng.random()
                if pick < 0.15:
                    right = Lit("NULL", column.tag)
                elif pick < 0.45 and len(peers) > 1:
                    right = rng.choice(peers)
                else:
                    right = self._literal(column.tag)
                return IsDistinct(column, right, rng.random() < 0.5)
            return self._comparison(cols, depth)
        if kind < 0.55:
            expr = self.expr(INT, cols, depth - 1, exact=True)
            lo = rng.randint(-30, 10)
            hi = lo + rng.randint(0, 40)
            return Between(expr, Lit(str(lo), INT, abs(lo)),
                           Lit(str(hi), INT, abs(hi)))
        if kind < 0.70:
            if ((where or rng.random() < 0.3) and self.tables
                    and rng.random() < 0.40):
                if rng.random() < 0.35:
                    return self._exists(cols)
                return self._in_subquery(cols)
            tag = STR if (str_cols and rng.random() < 0.5) else INT
            expr = (rng.choice(str_cols) if tag == STR
                    else self.expr(INT, cols, depth - 1, exact=True))
            values = [self._literal(tag) for _ in range(rng.randint(1, 4))]
            return InList(expr, values, rng.random() < 0.3)
        if kind < 0.82 and cols:
            return IsNull(rng.choice(cols), rng.random() < 0.5)
        if kind < 0.92 and str_cols:
            letters = "".join(
                rng.choice("abcdefghij") for _ in range(rng.randint(0, 2))
            )
            pattern = rng.choice([f"{letters}%", f"%{letters}", f"%{letters}%",
                                  f"{letters}_%"])
            return Like(rng.choice(str_cols), pattern, rng.random() < 0.3)
        if date_cols:
            return Cmp(rng.choice(["<", "<=", ">", ">=", "=", "<>"]),
                       rng.choice(date_cols), self._literal(DATE))
        if float_cols:
            return Cmp(rng.choice(["<", "<=", ">", ">=", "=", "<>"]),
                       rng.choice(float_cols), self._literal(FLOAT))
        return self._comparison(cols, depth)

    def _in_subquery(self, cols):
        """``expr [NOT] IN (SELECT col FROM t [ORDER BY col LIMIT k])``."""
        rng = self.rng
        table = self._pick_table()
        inner_cols = self._columns(table)
        str_inner = [c for c in inner_cols if c.tag == STR]
        int_inner = [c for c in inner_cols if c.tag == INT]
        tag = STR if (str_inner and rng.random() < 0.3) else INT
        candidates = str_inner if tag == STR else int_inner
        if not candidates:
            tag, candidates = INT, int_inner
        if not candidates:  # table with no usable column: plain IN-list
            expr = self.expr(INT, cols, 1, exact=True)
            values = [self._literal(INT) for _ in range(rng.randint(1, 3))]
            return InList(expr, values, rng.random() < 0.3)
        item = rng.choice(candidates)
        where = self.pred(inner_cols, 1, where=True) if rng.random() < 0.4 else None
        order, limit, offset = None, None, 0
        if rng.random() < 0.55:
            # ordered by the selected item itself: first-k value set is
            # deterministic even with ties on the key
            order = [(0, rng.random() < 0.5, rng.random() < 0.5)]
            limit = rng.randint(1, 6)
            if rng.random() < 0.3:
                offset = rng.randint(0, 2)
        inner = Select([item], FromTable(table.name), where=where,
                       order=order, limit=limit, offset=offset)
        outer_candidates = [c for c in cols if c.tag == tag]
        if outer_candidates and rng.random() < 0.7:
            operand = rng.choice(outer_candidates)
        elif tag == INT:
            operand = self.expr(INT, cols, 1, exact=True)
        else:
            operand = self._literal(STR)
        return InSubquery(operand, inner, rng.random() < 0.3)

    def _exists(self, cols):
        """``[NOT] EXISTS (SELECT col FROM t [WHERE ...])``, uncorrelated."""
        rng = self.rng
        table = self._pick_table()
        inner_cols = self._columns(table)
        item = rng.choice(inner_cols) if inner_cols else Lit("1", INT, 1)
        where = (self.pred(inner_cols, 1, where=True)
                 if inner_cols and rng.random() < 0.6 else None)
        inner = Select([item], FromTable(table.name), where=where)
        return Exists(inner, rng.random() < 0.4)

    def _comparison(self, cols, depth):
        rng = self.rng
        str_cols = [c for c in cols if c.tag == STR]
        date_cols = [c for c in cols if c.tag == DATE]
        float_cols = [c for c in cols if c.tag == FLOAT]
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        choice = rng.random()
        if choice < 0.55:
            return Cmp(op, self.expr(INT, cols, depth - 1, exact=True),
                       self.expr(INT, cols, depth - 1, exact=True))
        if choice < 0.70 and float_cols:
            # computed floats never reach predicates: plain column vs
            # literal only (repro's exact DECIMALs vs SQLite's doubles)
            return Cmp(op, rng.choice(float_cols), self._literal(FLOAT))
        if choice < 0.85 and str_cols:
            right = (rng.choice(str_cols) if len(str_cols) > 1
                     and rng.random() < 0.4 else self._literal(STR))
            return Cmp(op, rng.choice(str_cols), right)
        if date_cols:
            right = (rng.choice(date_cols) if len(date_cols) > 1
                     and rng.random() < 0.4 else self._literal(DATE))
            return Cmp(op, rng.choice(date_cols), right)
        return Cmp(op, self.expr(INT, cols, depth - 1, exact=True),
                   self.expr(INT, cols, depth - 1, exact=True))

    # -- aggregates ---------------------------------------------------------------

    def agg(self, cols: list):
        call = self._agg_call(cols)
        if (call.filter is None and not call.distinct and cols
                and self.rng.random() < 0.25):
            call.filter = self._filter_pred(cols)
        return call

    def _agg_call(self, cols: list):
        rng = self.rng
        roll = rng.random()
        int_cols = [c for c in cols if c.tag == INT]
        float_cols = [c for c in cols if c.tag == FLOAT]
        if roll < 0.2 or not cols:
            return Agg("COUNT", None, False, INT)
        if roll < 0.35:
            return Agg("COUNT", rng.choice(cols), rng.random() < 0.4, INT)
        if roll < 0.55 and int_cols:
            return Agg(rng.choice(["SUM", "MIN", "MAX"]),
                       rng.choice(int_cols), False, INT)
        if roll < 0.70 and (int_cols or float_cols):
            return Agg("AVG", rng.choice(int_cols + float_cols), False, FLOAT)
        if roll < 0.85 and float_cols:
            return Agg(rng.choice(["SUM", "MIN", "MAX"]),
                       rng.choice(float_cols), False, FLOAT)
        column = rng.choice(cols)
        tag = INT if column.tag == INT else column.tag
        return Agg(rng.choice(["MIN", "MAX"]), column, False, tag)

    def _filter_pred(self, cols: list):
        """Subquery-free predicate for a FILTER (WHERE ...) clause."""
        rng = self.rng
        if rng.random() < 0.3:
            return IsNull(rng.choice(cols), rng.random() < 0.5)
        return self._comparison(cols, 1)

    def _having(self, cols: list):
        rng = self.rng
        int_cols = [c for c in cols if c.tag == INT]
        agg = (Agg("COUNT", None, False, INT) if not int_cols
               or rng.random() < 0.5
               else Agg(rng.choice(["SUM", "MIN", "MAX", "COUNT"]),
                        rng.choice(int_cols), False, INT))
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        value = rng.randint(-5, 8)
        return Cmp(op, agg, Lit(str(value), INT, abs(value)))

    # -- query shapes -------------------------------------------------------------

    def query(self):
        roll = self.rng.random()
        if roll < 0.20:
            return self._simple_select()
        if roll < 0.36:
            return self._group_select()
        if roll < 0.44:
            return self._global_agg_select()
        if roll < 0.54:
            return self._set_query()
        if roll < 0.62:
            return self._subquery_select()
        if roll < 0.70:
            return self._join_select()
        if roll < 0.82:
            return self._window_select()
        if roll < 0.90:
            return self._cte_select()
        if roll < 0.96:
            return self._setop_sub_select()
        return self._constant_select()

    def _pick_table(self):
        return self.rng.choice(self.tables)

    def _simple_select(self, table=None):
        rng = self.rng
        table = table or self._pick_table()
        cols = self._columns(table)
        with_limit = rng.random() < 0.35
        if with_limit:
            # deterministic top-k: plain columns, ordered by all of them
            k = rng.randint(1, min(3, len(cols)))
            items = rng.sample(cols, k)
            order = [(i, rng.random() < 0.5, rng.random() < 0.5)
                     for i in range(len(items))]
            limit = rng.randint(1, 10)
            offset = rng.randint(0, 3) if rng.random() < 0.3 else 0
        else:
            items = [
                self.expr(rng.choice([INT, INT, FLOAT, STR, DATE]),
                          cols, rng.randint(0, 3))
                for _ in range(rng.randint(1, 4))
            ]
            if self.tables and rng.random() < 0.12:
                items.append(self._exists(cols))
            order = None
            limit, offset = None, 0
        distinct = (
            not with_limit
            and rng.random() < 0.2
            and all(_exact_item(item) for item in items)
        )
        where = self.pred(cols, 2, where=True) if rng.random() < 0.6 else None
        return Select(items, FromTable(table.name), where=where,
                      order=order, limit=limit, offset=offset,
                      distinct=distinct)

    def _group_select(self):
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        group_cols = [c for c in cols if c.tag in (INT, STR, DATE)]
        if not group_cols:
            return self._simple_select(table)
        keys = rng.sample(group_cols, rng.randint(1, min(2, len(group_cols))))
        items = list(keys)
        for _ in range(rng.randint(1, 2)):
            items.append(self.agg(cols))
        where = self.pred(cols, 1, where=True) if rng.random() < 0.5 else None
        having = self._having(cols) if rng.random() < 0.5 else None
        return Select(items, FromTable(table.name), where=where,
                      group=list(range(len(keys))), having=having)

    def _global_agg_select(self):
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        items = [self.agg(cols) for _ in range(rng.randint(1, 3))]
        where = self.pred(cols, 2, where=True) if rng.random() < 0.5 else None
        return Select(items, FromTable(table.name), where=where)

    def _branch(self, tags):
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        items = [self.expr(tag, cols, rng.randint(0, 2), exact=True)
                 for tag in tags]
        where = self.pred(cols, 1, where=True) if rng.random() < 0.5 else None
        return Select(items, FromTable(table.name), where=where)

    def _set_query(self):
        rng = self.rng
        tags = [rng.choice([INT, INT, FLOAT, STR, DATE])
                for _ in range(rng.randint(1, 3))]
        op = rng.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
        query = SetQuery(op, self._branch(tags), self._branch(tags))
        if rng.random() < 0.45:
            # ORDER BY every output ordinal: row order becomes checkable
            # and any LIMIT is deterministic (boundary ties are identical
            # rows, so the first-k multiset is unique)
            query.order = [(i, rng.random() < 0.5, rng.random() < 0.5)
                           for i in range(len(tags))]
            if rng.random() < 0.6:
                query.limit = rng.randint(1, 8)
                if rng.random() < 0.3:
                    query.offset = rng.randint(0, 3)
        return query

    def _subquery_select(self):
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        inner_items = []
        for _ in range(rng.randint(1, 3)):
            tag = rng.choice([INT, INT, FLOAT, STR, DATE])
            inner_items.append(
                self.expr(tag, cols, rng.randint(0, 2), exact=True)
            )
        inner_where = self.pred(cols, 1, where=True) if rng.random() < 0.5 else None
        inner_order, inner_limit, inner_offset = None, None, 0
        if rng.random() < 0.4:
            # derived table with a deterministic top-k: ordered by every
            # item, so the surviving row multiset is unique
            inner_order = [(i, rng.random() < 0.5, rng.random() < 0.5)
                           for i in range(len(inner_items))]
            inner_limit = rng.randint(1, 8)
            if rng.random() < 0.3:
                inner_offset = rng.randint(0, 3)
        inner = Select(inner_items, FromTable(table.name),
                       where=inner_where, order=inner_order,
                       limit=inner_limit, offset=inner_offset,
                       aliased=True)
        derived = [Col(f"s.c{i}", item.tag, getattr(item, "bound", 0))
                   for i, item in enumerate(inner_items)]
        items = [self.expr(rng.choice([c.tag for c in derived]),
                           derived, rng.randint(0, 2))
                 for _ in range(rng.randint(1, 3))]
        where = self.pred(derived, 1, where=True) if rng.random() < 0.5 else None
        return Select(items, FromSub(inner, "s"), where=where)

    def _join_select(self):
        rng = self.rng
        if len(self.tables) < 2:
            return self._simple_select()
        left, right = rng.sample(self.tables, 2)
        lcols = self._columns(left, prefix="x.")
        rcols = self._columns(right, prefix="y.")
        lints = [c for c in lcols if c.tag == INT]
        rints = [c for c in rcols if c.tag == INT]
        if not lints or not rints:
            return self._simple_select()
        pred = Cmp("=", rng.choice(lints), rng.choice(rints))
        cols = lcols + rcols
        items = [rng.choice(cols) for _ in range(rng.randint(1, 3))]
        where = self.pred(cols, 1, where=True) if rng.random() < 0.4 else None
        roll = rng.random()
        if roll < 0.30:
            # explicit LEFT JOIN, sometimes with a residual ON conjunct
            # over the null-extended side
            if rcols and rng.random() < 0.4:
                pred = BoolOp("AND", [pred, self.pred(rcols, 1, where=True)])
            return Select(
                items,
                FromOuterJoin(left.name, "x", right.name, "y", pred, "LEFT"),
                where=where,
            )
        if roll < 0.45:
            return Select(
                items,
                FromOuterJoin(left.name, "x", right.name, "y", pred, "INNER"),
                where=where,
            )
        return Select(items, FromJoin(left.name, "x", right.name, "y", pred),
                      where=where)

    def _window_select(self):
        """Plain columns plus 1-2 window calls, multiset-compared.

        Every emitted combination is deterministic: ROW_NUMBER and ROWS
        frames order by *every* table column (ties are then fully
        identical, hence interchangeable, rows), RANK/DENSE_RANK and
        RANGE-default running aggregates are functions of the order-key
        values themselves, and whole-partition aggregates are functions
        of the partition key.  Window aggregate arguments stay INT —
        float accumulation order is unobservable but not bit-identical.
        """
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        key_cols = [c for c in cols if c.tag in (INT, STR, DATE)]
        int_cols = [c for c in cols if c.tag == INT]
        if not key_cols:
            return self._simple_select(table)
        partition = rng.sample(
            key_cols, rng.randint(0, min(2, len(key_cols)))
        )

        def some_order():
            pool = rng.sample(
                key_cols, rng.randint(1, min(2, len(key_cols)))
            )
            return [(c, rng.random() < 0.5, rng.random() < 0.5)
                    for c in pool]

        total_order = [(c, rng.random() < 0.5, rng.random() < 0.5)
                       for c in cols]
        shape = rng.random()
        if shape < 0.35 or not int_cols:
            func = rng.choice(["RANK", "DENSE_RANK", "ROW_NUMBER"])
            order = total_order if func == "ROW_NUMBER" else some_order()
            call = WinCall(func, None, partition, order, None, INT, 100)
        elif shape < 0.60:
            # running aggregate over the default RANGE frame
            call = WinCall(rng.choice(["SUM", "COUNT", "MIN", "MAX"]),
                           rng.choice(int_cols), partition, some_order(),
                           None, INT, _INT_CEILING)
        elif shape < 0.80:
            # explicit ROWS frame; the engine caps MIN/MAX at cumulative
            # frames, so bounded frames stick to SUM/COUNT
            frame = rng.choice([
                "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW",
                "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW",
                "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW",
                "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING",
                "ROWS BETWEEN CURRENT ROW AND UNBOUNDED FOLLOWING",
            ])
            call = WinCall(rng.choice(["SUM", "COUNT"]),
                           rng.choice(int_cols), partition, total_order,
                           frame, INT, _INT_CEILING)
        else:
            # whole partition (possibly OVER () over the whole table)
            if rng.random() < 0.8:
                func = rng.choice(["SUM", "COUNT", "MIN", "MAX", "AVG"])
                tag = FLOAT if func == "AVG" else INT
                call = WinCall(func, rng.choice(int_cols), partition, [],
                               None, tag, _INT_CEILING)
            else:
                call = WinCall("COUNT", None, partition, [], None, INT, 42)
        items = rng.sample(cols, rng.randint(1, min(2, len(cols))))
        items.append(call)
        if rng.random() < 0.3:
            # a second call over the same window exercises spec sharing
            items.append(WinCall("COUNT", None, call.partition, call.order,
                                 call.frame, INT, 42))
        where = (self.pred(cols, 1, where=True)
                 if rng.random() < 0.4 else None)
        return Select(items, FromTable(table.name), where=where)

    def _cte_select(self):
        """``WITH w AS (SELECT ... FROM t) SELECT ... FROM w``."""
        rng = self.rng
        table = self._pick_table()
        cols = self._columns(table)
        inner_items = []
        for _ in range(rng.randint(1, 3)):
            tag = rng.choice([INT, INT, FLOAT, STR, DATE])
            inner_items.append(
                self.expr(tag, cols, rng.randint(0, 2), exact=True)
            )
        inner_where = (self.pred(cols, 1, where=True)
                       if rng.random() < 0.5 else None)
        inner = Select(inner_items, FromTable(table.name),
                       where=inner_where, aliased=True)
        derived = [Col(f"w.c{i}", item.tag, getattr(item, "bound", 0))
                   for i, item in enumerate(inner_items)]
        keys = [c for c in derived if c.tag in (INT, STR, DATE)]
        if keys and rng.random() < 0.35:
            # grouped body: the CTE feeds an aggregation
            body = Select([rng.choice(keys), self.agg(derived)],
                          FromTable("w"), group=[0])
            return WithQuery("w", inner, body)
        items = [self.expr(rng.choice([c.tag for c in derived]),
                           derived, rng.randint(0, 2))
                 for _ in range(rng.randint(1, 3))]
        where = (self.pred(derived, 1, where=True)
                 if rng.random() < 0.5 else None)
        return WithQuery("w", inner, Select(items, FromTable("w"),
                                            where=where))

    def _setop_sub_select(self):
        """A set operation used as a derived table."""
        rng = self.rng
        tags = [rng.choice([INT, INT, FLOAT, STR, DATE])
                for _ in range(rng.randint(1, 2))]
        op = rng.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
        left = self._branch(tags)
        left.aliased = True  # both dialects name set-op output after it
        right = self._branch(tags)
        inner = SetQuery(op, left, right)
        if rng.random() < 0.35:
            inner.order = [(i, rng.random() < 0.5, rng.random() < 0.5)
                           for i in range(len(tags))]
            if rng.random() < 0.6:
                inner.limit = rng.randint(1, 8)
        derived = [
            Col(f"s.c{i}", tag,
                max(getattr(left.items[i], "bound", 0),
                    getattr(right.items[i], "bound", 0)))
            for i, tag in enumerate(tags)
        ]
        items = [self.expr(rng.choice([c.tag for c in derived]),
                           derived, rng.randint(0, 2))
                 for _ in range(rng.randint(1, 2))]
        where = (self.pred(derived, 1, where=True)
                 if rng.random() < 0.4 else None)
        return Select(items, FromSub(inner, "s"), where=where)

    def _constant_select(self):
        rng = self.rng
        items = [self.expr(rng.choice([INT, FLOAT, STR]), [], 2)
                 for _ in range(rng.randint(1, 3))]
        return Select(items, None)


def _exact_item(item) -> bool:
    """True when the item is safe to deduplicate across dialects."""
    return item.tag != FLOAT or isinstance(item, (Col, Lit))
