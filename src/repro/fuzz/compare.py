"""NULL- and float-tolerant result comparison between repro and SQLite.

Both engines' raw result rows are first normalized into a common value
domain (dates to ISO strings, bools/ints/floats to floats, NULL to
``None``).  The default comparison is a *multiset* check — row order is
an implementation detail unless the query pins it — with float cells
compared under relative tolerance.  Queries whose ORDER BY covers every
output column additionally get an order-aware (list prefix) check.
"""

from __future__ import annotations

import datetime
import math

__all__ = ["normalize_rows", "rows_equivalent", "diff_classification"]

#: tolerance for float cells: generous enough for summation-order and
#: decimal-vs-double representation differences, far tighter than any
#: genuine wrong answer over the generated data
_REL_TOL = 1e-7
_ABS_TOL = 1e-9


def _normalize_cell(value):
    if value is None:
        return None
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def normalize_rows(rows: list) -> list:
    return [tuple(_normalize_cell(cell) for cell in row) for row in rows]


def _sort_key(row: tuple):
    key = []
    for cell in row:
        if cell is None:
            key.append((0, ""))
        elif isinstance(cell, float):
            # round to 6 significant digits so floats equal under the
            # comparison tolerance sort as *ties* on both sides — later
            # columns then break the tie identically, keeping the
            # multiset pairing stable (exact keys would interleave
            # -0.5700000000000003 and -0.5699999999999998 differently
            # from two exact -0.57s)
            if math.isnan(cell):
                key.append((1, (1, 0.0)))
            else:
                key.append((1, (0, float(f"{cell:.6g}"))))
        else:
            key.append((2, cell))
    return key


def _cells_match(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
    return a == b


def _rows_match(a: tuple, b: tuple) -> bool:
    return len(a) == len(b) and all(
        _cells_match(x, y) for x, y in zip(a, b)
    )


def rows_equivalent(left: list, right: list, ordered: bool) -> bool:
    """Equivalence of two normalized result sets.

    ``ordered`` compares positionally (the query pinned a total order);
    otherwise rows are matched as multisets via a canonical sort.  Floats
    compare under tolerance, so both sides are sorted the same way first —
    near-equal floats stay adjacent and pair up.
    """
    if len(left) != len(right):
        return False
    if not ordered:
        left = sorted(left, key=_sort_key)
        right = sorted(right, key=_sort_key)
    return all(_rows_match(a, b) for a, b in zip(left, right))


def diff_classification(left: list, right: list, ordered: bool) -> str:
    """'ok', 'wrong_nulls' (differs only where one side is NULL), or
    'wrong_rows'."""
    if rows_equivalent(left, right, ordered):
        return "ok"
    if len(left) == len(right):
        a = sorted(left, key=_sort_key) if not ordered else left
        b = sorted(right, key=_sort_key) if not ordered else right
        only_null_diffs = True
        for ra, rb in zip(a, b):
            if len(ra) != len(rb):
                only_null_diffs = False
                break
            for x, y in zip(ra, rb):
                if not _cells_match(x, y) and x is not None and y is not None:
                    only_null_diffs = False
                    break
            if not only_null_diffs:
                break
        if only_null_diffs:
            return "wrong_nulls"
    return "wrong_rows"
