"""repro — a Python reproduction of MonetDBLite (CIKM 2018).

An embedded analytical database: columnar storage with NULL sentinels and
duplicate-eliminating string heaps, optimistic MVCC, a SQL front-end, a
MAL-style column-at-a-time engine with automatic indexing and chunked
parallel execution, zero-copy/lazy NumPy result transfer — plus the
substrates the paper's evaluation compares against (an embedded Volcano
row store, socket-served configurations, and a dataframe library).

Quickstart::

    import repro

    db = repro.startup()                 # in-memory; pass a path to persist
    conn = db.connect()
    conn.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
    conn.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    print(conn.query("SELECT a, b FROM t ORDER BY a").fetchall())
    repro.shutdown()
"""

from repro.core import Connection, Database, Result, shutdown, startup
from repro.errors import DatabaseError

__version__ = "0.1.0"

__all__ = [
    "Connection",
    "Database",
    "Result",
    "DatabaseError",
    "startup",
    "shutdown",
    "__version__",
]


def connect(directory: str | None = None, **config) -> Connection:
    """Start a database (if needed) and return a connection to it.

    Convenience one-liner mirroring ``sqlite3.connect``; reuses the active
    database instance when one is already running.
    """
    from repro.core.database import active_database

    database = active_database()
    if database is None:
        database = startup(directory, **config)
    return database.connect()
