"""The C-style embedding API of the paper, section 3.2.

Thin functional wrappers mirroring the C interface::

    db   = monetdb_startup("/path/to/db")      # or None for in-memory
    conn = monetdb_connect(db)
    res  = monetdb_query(conn, "SELECT ...")
    col  = monetdb_result_fetch(res, 0, level="high")
    monetdb_append(conn, "tbl", {"a": array, ...})
    monetdb_disconnect(conn)
    monetdb_shutdown()

The object-oriented API (:mod:`repro.core`) is the idiomatic entry point;
this module exists so code written against the paper's Listings 1-2 maps
one-to-one.
"""

from __future__ import annotations

from repro.core.database import Database, shutdown as _shutdown, startup as _startup
from repro.core.connection import Connection
from repro.core.result import MonetdbColumn, Result
from repro.errors import InterfaceError

__all__ = [
    "monetdb_startup",
    "monetdb_shutdown",
    "monetdb_connect",
    "monetdb_disconnect",
    "monetdb_query",
    "monetdb_append",
    "monetdb_result_fetch",
    "monetdb_cleanup_result",
    "monetdb_export_trace",
]


def monetdb_startup(directory: str | None = None, **config) -> Database:
    """Initialize the database; ``directory=None`` = in-memory mode."""
    return _startup(directory, **config)


def monetdb_shutdown() -> None:
    """Shut the active database down and release all global state."""
    _shutdown()


def monetdb_connect(database: Database) -> Connection:
    """Create a dummy-client connection to a running database."""
    return database.connect()


def monetdb_disconnect(connection: Connection) -> None:
    connection.close()


def monetdb_query(connection: Connection, sql: str) -> Result | None:
    """Issue SQL; returns a columnar result object (or None for DML/DDL)."""
    return connection.execute(sql)


def monetdb_append(connection: Connection, table: str, data) -> int:
    """Bulk-append columnar data without SQL parsing overhead."""
    return connection.append(table, data)


def monetdb_result_fetch(result: Result, column: int, level: str = "high"):
    """Fetch one column of a result.

    ``level="low"`` returns the engine's packed array zero-copy (requires
    knowledge of the internals: sentinels, heap offsets); ``level="high"``
    returns a self-describing :class:`~repro.core.result.MonetdbColumn`.
    """
    if level == "low":
        return result.fetch_low_level(column)
    if level == "high":
        return result.fetch_high_level(column)
    raise InterfaceError(f"unknown fetch level {level!r}")


def monetdb_cleanup_result(result: Result) -> None:
    result.close()


def monetdb_export_trace(
    database: Database, fmt: str = "chrome",
    trace_id: str | None = None, path: str | None = None,
) -> dict:
    """Export retained spans as Chrome ``trace_event`` or OTLP JSON.

    ``fmt="chrome"`` documents load directly in ``chrome://tracing`` /
    Perfetto; ``path`` additionally writes the document to a file.
    """
    return database.export_trace(fmt=fmt, trace_id=trace_id, path=path)
