"""Native language interface: zero-copy export, CoW, lazy conversion, C-API.

Implements section 3.3 of the paper for the NumPy ecosystem: query results
are exposed as *native* NumPy arrays so any third-party code works on them;
bit-compatible columns are shared zero-copy with copy-on-write protection;
columns needing conversion can be converted lazily on first touch.
"""

from repro.interface.zerocopy import COWArray, export_column
from repro.interface.lazy import LazyColumn
from repro.interface import capi
from repro.interface.capi import (
    monetdb_append,
    monetdb_connect,
    monetdb_disconnect,
    monetdb_query,
    monetdb_result_fetch,
    monetdb_shutdown,
    monetdb_startup,
)

__all__ = [
    "COWArray",
    "LazyColumn",
    "export_column",
    "capi",
    "monetdb_startup",
    "monetdb_shutdown",
    "monetdb_connect",
    "monetdb_disconnect",
    "monetdb_query",
    "monetdb_append",
    "monetdb_result_fetch",
]
