"""Zero-copy column export with copy-on-write protection.

Paper section 3.3, "Zero-Copy": when the database's packed array is
bit-compatible with the target environment's native array format, we share
a pointer instead of copying; the only cost is initializing metadata, which
is independent of data size.  In NumPy terms that is a view over the
storage buffer — here wrapped read-only, plus :class:`COWArray` for the
paper's copy-on-write semantics (the engine used ``mprotect`` + a write
trap; NumPy's ``writeable`` flag plus a copying wrapper reproduces the
observable behavior: reads are free, the first write triggers a private
copy, the database buffer is never corrupted).

"Header forgery" (paper Figure 3) — prepending the target's array header to
unowned memory via page-table tricks — is unnecessary in NumPy, which
separates the array header from the data buffer by design; a view *is* the
forged header.
"""

from __future__ import annotations

import numpy as np

from repro.storage import types as T
from repro.storage.column import Column

__all__ = ["COWArray", "export_column", "is_zero_copy_type"]


def is_zero_copy_type(ctype: T.SQLType) -> bool:
    """Whether a column of this type can be shared without conversion.

    Integers and floats are stored exactly as NumPy expects; DECIMAL (scaled
    int), DATE (epoch days) and strings (heap offsets) need conversion into
    client-facing values.
    """
    return ctype.category in (T.TypeCategory.INTEGER, T.TypeCategory.FLOAT) or (
        ctype.category == T.TypeCategory.BOOLEAN
    )


class COWArray:
    """Copy-on-write wrapper around a shared (read-only) array.

    Reading delegates to the shared buffer; the first write allocates a
    private copy and all subsequent operations use it.  The underlying
    database storage is never modified.
    """

    __slots__ = ("_array", "_owned")

    def __init__(self, shared: np.ndarray):
        view = shared.view()
        view.flags.writeable = False
        self._array = view
        self._owned = False

    @property
    def is_copied(self) -> bool:
        """Whether a write has already triggered the private copy."""
        return self._owned

    def _materialize(self) -> np.ndarray:
        if not self._owned:
            self._array = self._array.copy()
            self._owned = True
        return self._array

    # -- reads ------------------------------------------------------------------

    def __array__(self, dtype=None, copy=None):
        if dtype is not None and dtype != self._array.dtype:
            return self._array.astype(dtype)
        return self._array

    def __getitem__(self, item):
        return self._array[item]

    def __len__(self) -> int:
        return len(self._array)

    def __iter__(self):
        return iter(self._array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "copied" if self._owned else "shared"
        return f"COWArray({state}, {self._array!r})"

    @property
    def dtype(self):
        return self._array.dtype

    @property
    def shape(self):
        return self._array.shape

    @property
    def nbytes(self):
        return self._array.nbytes

    # -- writes (trigger the copy) --------------------------------------------------

    def __setitem__(self, item, value) -> None:
        self._materialize()[item] = value

    def fill(self, value) -> None:
        self._materialize().fill(value)

    # -- arithmetic convenience (reads) ---------------------------------------------

    def __eq__(self, other):
        return self._array == other

    def __ne__(self, other):
        return self._array != other

    def __add__(self, other):
        return self._array + other

    def __mul__(self, other):
        return self._array * other

    def sum(self, *args, **kwargs):
        return self._array.sum(*args, **kwargs)

    def mean(self, *args, **kwargs):
        return self._array.mean(*args, **kwargs)


def convert_column(column: Column) -> np.ndarray:
    """Eager conversion of a non-bit-compatible column to client values."""
    ctype = column.type
    if ctype.category == T.TypeCategory.DECIMAL:
        out = column.data.astype(np.float64) / 10**ctype.scale
        out[ctype.is_null_array(column.data)] = np.nan
        return out
    if ctype.category == T.TypeCategory.DATE:
        # epoch days map directly onto NumPy's datetime64[D]
        out = column.data.astype("datetime64[D]")
        out[ctype.is_null_array(column.data)] = np.datetime64("NaT")
        return out
    if ctype.category == T.TypeCategory.TIMESTAMP:
        out = column.data.astype("datetime64[us]")
        out[ctype.is_null_array(column.data)] = np.datetime64("NaT")
        return out
    if ctype.is_variable:
        return column.heap.values_array()[column.data]
    raise TypeError(f"no conversion defined for {ctype.name}")


def export_column(column: Column, lazy: bool = False, copy: bool = False):
    """Export one column to the client in native NumPy form.

    * bit-compatible types: zero-copy :class:`COWArray` (or a plain copy if
      ``copy=True``, the baseline the benchmarks compare against);
    * other types: converted — eagerly, or lazily on first access when
      ``lazy=True`` (paper section 3.3, "Lazy Conversion").
    """
    from repro.interface.lazy import LazyColumn

    if is_zero_copy_type(column.type):
        if copy:
            return column.data.copy()
        return COWArray(column.data)
    if lazy:
        return LazyColumn(column, convert_column)
    return convert_column(column)
