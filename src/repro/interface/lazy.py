"""Lazy result conversion (paper section 3.3, Figure 4).

The engine returned "dummy arrays" of uninitialized memory protected with
``mprotect(PROT_NONE)``; the first touch raised a segfault whose handler
converted the data and unprotected the pages.  The Python analog is a proxy
object holding the unconverted column: returning it costs O(1), and the
conversion (linear in the column size) runs exactly once, on first access.
``SELECT * FROM t`` followed by touching two of 274 columns converts two.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LazyColumn"]


class LazyColumn:
    """A column proxy that converts on first access."""

    __slots__ = ("_column", "_converter", "_converted")

    def __init__(self, column, converter):
        self._column = column
        self._converter = converter
        self._converted: np.ndarray | None = None

    @property
    def is_converted(self) -> bool:
        """Whether the conversion has been triggered yet."""
        return self._converted is not None

    def _materialize(self) -> np.ndarray:
        if self._converted is None:
            self._converted = self._converter(self._column)
        return self._converted

    # any read access triggers the conversion, like the segfault handler did

    def __array__(self, dtype=None, copy=None):
        data = self._materialize()
        if dtype is not None and dtype != data.dtype:
            return data.astype(dtype)
        return data

    def __getitem__(self, item):
        return self._materialize()[item]

    def __len__(self) -> int:
        # length is header metadata: it does NOT trigger conversion
        return len(self._column)

    def __iter__(self):
        return iter(self._materialize())

    @property
    def dtype(self):
        return self._materialize().dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "converted" if self.is_converted else "pending"
        return f"LazyColumn({state}, n={len(self._column)})"
