"""Partial / combine variants of the aggregate kernels.

Morsel-driven execution computes aggregates in two steps: every morsel
builds a thread-local *partial state* per group
(:func:`partial_aggregate`), and the breaker merges the states of all
morsels into final values (:func:`merge_partials`).  The decompositions
mirror ``repro.mal.operators.aggregate`` exactly:

==========  ==========================================================
sum         per-group sums + non-null counts (int64 exact for INTEGER
            and DECIMAL storage, float64 otherwise)
count(*)    per-group row counts
count       per-group non-null counts
avg         float sums + counts, divided after the merge
min/max     per-group extremes in the float comparison domain (exact:
            comparisons commute), mapped back to storage at the end;
            object-domain best values for strings
median      not decomposable into fixed-size state — the partial state
            is the morsel's (values, gids) pair and the merge sorts the
            combined multiset, which is order-insensitive
stddev/var  (count, sum, sum-of-squares) moments
==========  ==========================================================

DISTINCT aggregates are not decomposable and are rejected upstream by
the fragment analysis (the program falls back to pack mode).  Float
sums/averages are merged by re-associated addition, so they can differ
from sequential answers in the last few ulps — integer, decimal-as-int,
count, min/max, and median merges are bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatabaseError
from repro.mal import operators as ops
from repro.mal.vectors import V
from repro.storage import types as T

__all__ = ["PartialState", "partial_aggregate", "merge_partials"]

_EXACT_SUM_CATEGORIES = (T.TypeCategory.INTEGER, T.TypeCategory.DECIMAL)


@dataclass
class PartialState:
    """One morsel's per-group aggregate state for one aggregate."""

    func: str
    arg_type: T.SQLType | None
    ngroups: int
    data: tuple


def partial_aggregate(
    func: str, arg: V | None, gids: np.ndarray, ngroups: int
) -> PartialState:
    """Thread-local per-group state of one aggregate over one morsel."""
    if func == "count_star":
        counts = np.bincount(gids, minlength=ngroups).astype(np.int64)
        return PartialState(func, None, ngroups, (counts,))
    if arg is None:
        raise DatabaseError(f"aggregate {func} requires an argument")

    data = arg.data
    n = len(gids)
    if not isinstance(data, np.ndarray):  # broadcast scalar argument
        if arg.type.is_variable:
            data = np.full(n, 0, dtype=np.int64)
        else:
            fill = arg.type.null_value if arg.data is None else arg.data
            data = np.full(n, fill, dtype=arg.type.dtype)
        arg = V(arg.type, data, arg.heap)

    nulls = arg.null_mask(n)
    present = ~nulls if nulls is not None else np.ones(n, dtype=bool)

    if func == "count":
        counts = np.bincount(gids[present], minlength=ngroups).astype(np.int64)
        return PartialState(func, arg.type, ngroups, (counts,))

    if arg.type.is_variable:
        if func not in ("min", "max"):
            raise DatabaseError(f"aggregate {func} not defined for strings")
        best, missing = ops._string_minmax(func, arg, gids, ngroups)
        return PartialState(func, arg.type, ngroups, (best, missing))

    floats = ops._as_float(arg, data, nulls)
    counts = np.bincount(gids[present], minlength=ngroups)

    if func == "sum":
        if arg.type.category in _EXACT_SUM_CATEGORIES:
            sums = np.zeros(ngroups, dtype=np.int64)
            np.add.at(sums, gids[present], data[present].astype(np.int64))
        else:
            sums = np.bincount(
                gids[present], weights=floats[present], minlength=ngroups
            )
        return PartialState(func, arg.type, ngroups, (sums, counts))
    if func == "avg":
        sums = np.bincount(
            gids[present], weights=floats[present], minlength=ngroups
        )
        return PartialState(func, arg.type, ngroups, (sums, counts))
    if func in ("min", "max"):
        init = np.inf if func == "min" else -np.inf
        out = np.full(ngroups, init, dtype=np.float64)
        ufunc = np.minimum if func == "min" else np.maximum
        ufunc.at(out, gids[present], floats[present])
        return PartialState(func, arg.type, ngroups, (out, counts))
    if func == "median":
        return PartialState(
            func, arg.type, ngroups, (floats[present], gids[present])
        )
    if func in ("stddev", "var"):
        sums = np.bincount(
            gids[present], weights=floats[present], minlength=ngroups
        )
        squares = np.bincount(
            gids[present], weights=floats[present] ** 2, minlength=ngroups
        )
        return PartialState(func, arg.type, ngroups, (counts, sums, squares))
    raise DatabaseError(f"no partial decomposition for aggregate {func!r}")


def merge_partials(states: list, gid_maps: list, ngroups: int):
    """Combine per-morsel states into final (values, null_mask) arrays.

    ``gid_maps[m]`` maps morsel ``m``'s local group ids to global group
    ids (an all-zero array for ungrouped aggregates); the output arrays
    have ``ngroups`` global entries and feed ``Interpreter._wrap_agg``
    unchanged, exactly like ``operators.aggregate`` results do.
    """
    first = states[0]
    func = first.func
    arg_type = first.arg_type

    if func in ("count_star", "count"):
        total = np.zeros(ngroups, dtype=np.int64)
        for state, gmap in zip(states, gid_maps):
            np.add.at(total, gmap, state.data[0])
        return total, None

    if arg_type is not None and arg_type.is_variable:
        return _merge_string_minmax(func, states, gid_maps, ngroups)

    if func == "sum":
        exact = arg_type.category in _EXACT_SUM_CATEGORIES
        total = np.zeros(ngroups, dtype=np.int64 if exact else np.float64)
        counts = np.zeros(ngroups, dtype=np.int64)
        for state, gmap in zip(states, gid_maps):
            sums, part_counts = state.data
            np.add.at(total, gmap, sums)
            np.add.at(counts, gmap, part_counts)
        if exact and arg_type.category == T.TypeCategory.DECIMAL:
            # same final descale as the blocking kernel: bit-identical
            return total.astype(np.float64) / 10**arg_type.scale, counts == 0
        return total, counts == 0
    if func == "avg":
        total = np.zeros(ngroups, dtype=np.float64)
        counts = np.zeros(ngroups, dtype=np.int64)
        for state, gmap in zip(states, gid_maps):
            sums, part_counts = state.data
            np.add.at(total, gmap, sums)
            np.add.at(counts, gmap, part_counts)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = total / counts
        return out, counts == 0
    if func in ("min", "max"):
        init = np.inf if func == "min" else -np.inf
        ufunc = np.minimum if func == "min" else np.maximum
        out = np.full(ngroups, init, dtype=np.float64)
        counts = np.zeros(ngroups, dtype=np.int64)
        for state, gmap in zip(states, gid_maps):
            extremes, part_counts = state.data
            ufunc.at(out, gmap, extremes)
            np.add.at(counts, gmap, part_counts)
        empty = counts == 0
        if arg_type.category == T.TypeCategory.FLOAT:
            return out, empty
        # map back into the argument's storage domain (same finish as the
        # blocking kernel in operators.aggregate)
        if arg_type.category == T.TypeCategory.DECIMAL:
            raw = np.round(out * 10**arg_type.scale)
        else:
            raw = out
        raw = np.where(empty, 0, raw).astype(arg_type.dtype)
        return raw, empty
    if func == "median":
        values = np.concatenate([state.data[0] for state in states])
        gids = np.concatenate(
            [gmap[state.data[1]] for state, gmap in zip(states, gid_maps)]
        )
        present = np.ones(len(values), dtype=bool)
        return ops._median(values, present, gids, ngroups)
    if func in ("stddev", "var"):
        counts = np.zeros(ngroups, dtype=np.float64)
        sums = np.zeros(ngroups, dtype=np.float64)
        squares = np.zeros(ngroups, dtype=np.float64)
        for state, gmap in zip(states, gid_maps):
            part_counts, part_sums, part_squares = state.data
            np.add.at(counts, gmap, part_counts)
            np.add.at(sums, gmap, part_sums)
            np.add.at(squares, gmap, part_squares)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = sums / counts
            variance = squares / counts - mean**2
            variance = np.where(
                counts > 1, variance * counts / (counts - 1), np.nan
            )
        if func == "var":
            return variance, counts <= 1
        return np.sqrt(np.maximum(variance, 0)), counts <= 1
    raise DatabaseError(f"cannot merge partial states for {func!r}")


def _merge_string_minmax(func, states, gid_maps, ngroups):
    best: list = [None] * ngroups
    better = (
        (lambda a, b: a < b) if func == "min" else (lambda a, b: a > b)
    )
    for state, gmap in zip(states, gid_maps):
        values, missing = state.data
        for local, value in enumerate(values):
            if missing[local] or value is None:
                continue
            gid = int(gmap[local])
            current = best[gid]
            if current is None or better(value, current):
                best[gid] = value
    return (
        np.array(best, dtype=object),
        np.array([b is None for b in best]),
    )
