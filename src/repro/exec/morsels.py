"""Morsel splitting and chunk packing, shared across execution paths.

One splitter serves both the morsel-driven fragment executor and the
legacy per-instruction chunked tactic, so the two paths agree on work
granularity.  The old interpreter heuristic
(``max(min_parallel_rows // 2, ceil(n / workers))``) could hand out a
single oversized chunk just above the parallel threshold and left a tiny
imbalanced tail chunk; this splitter always produces evenly sized
morsels (row counts differing by at most one) and widens the morsel
count to keep every worker busy when the input is barely large enough.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MIN_MORSEL_ROWS", "morsel_bounds", "pack_values"]

#: Below this many rows per morsel, splitting is pure dispatch overhead.
MIN_MORSEL_ROWS = 8192


def morsel_bounds(n: int, morsel_rows: int, workers: int = 1) -> list:
    """Split ``n`` rows into evenly sized ``(start, stop)`` morsels.

    Targets ``morsel_rows`` rows per morsel; when that yields fewer
    morsels than there are workers, the count grows toward ``workers``
    as long as each morsel keeps at least :data:`MIN_MORSEL_ROWS` rows.
    Sizes differ by at most one row, so there is no undersized tail.
    """
    if n <= 0:
        return []
    morsel_rows = max(1, morsel_rows)
    count = -(-n // morsel_rows)  # ceil
    if workers > 1 and count > 1:
        count = max(count, min(workers, max(1, n // MIN_MORSEL_ROWS)))
    count = min(count, n)
    base, extra = divmod(n, count)
    bounds = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def pack_values(results: list):
    """Concatenate per-morsel kernel outputs (the "pack" of paper Fig. 2).

    Accepts the value shapes that flow between pipeline instructions:
    vectors (``V``), predicates (``BoolVec``), and raw id arrays.  Import
    of the vector types is deferred so this module stays import-cycle
    free (``repro.mal.interpreter`` imports it at module load).
    """
    from repro.mal.vectors import BoolVec, V

    first = results[0]
    if isinstance(first, BoolVec):
        truth = np.concatenate([r.truth for r in results])
        if any(r.valid is not None for r in results):
            valid = np.concatenate(
                [
                    r.valid
                    if r.valid is not None
                    else np.ones(len(r.truth), dtype=bool)
                    for r in results
                ]
            )
            return BoolVec(truth, valid)
        return BoolVec(truth)
    if isinstance(first, V):
        if first.is_scalar:
            return first
        if first.type.is_variable and not all(
            r.heap is first.heap for r in results
        ):
            # mixed heaps (some morsels computed fresh strings): go through
            # the object domain, the common denominator
            return V(
                first.type, np.concatenate([r.objects() for r in results])
            )
        return V(
            first.type,
            np.concatenate([r.data for r in results]),
            first.heap,
        )
    return np.concatenate(results)
