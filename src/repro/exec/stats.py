"""Live morsel-executor counters behind ``sys.exec_stats``.

One :class:`ExecStats` instance lives on each :class:`~repro.core.database.
Database`; the executor updates it from the coordinator and worker
threads, and the ``sys.exec_stats`` virtual table snapshots it per query.
All mutation happens under one lock — the update frequency is bounded by
the morsel rate (morsels are tens of thousands of rows), so contention is
negligible next to kernel work.
"""

from __future__ import annotations

import threading

__all__ = ["ExecStats"]


class ExecStats:
    """Cumulative and live counters of the morsel executor."""

    def __init__(self, metrics=None):
        self._lock = threading.Lock()
        self._metrics = metrics
        self.fragments_started = 0
        self.fragments_completed = 0
        self.morsels_dispatched = 0
        self.morsels_completed = 0
        self.rows_processed = 0
        self.busy_ns = 0
        self.wall_ns = 0
        #: morsels queued but not yet finished, across in-flight fragments
        self.queue_depth = 0
        #: workers of the most recent fragment
        self.last_workers = 0
        #: busy/wall utilization of the most recent fragment
        self.last_utilization = 0.0

    def fragment_started(self, morsels: int, workers: int) -> None:
        with self._lock:
            self.fragments_started += 1
            self.morsels_dispatched += morsels
            self.queue_depth += morsels
            self.last_workers = workers
        if self._metrics is not None:
            self._metrics.incr("exec_fragments")
            self._metrics.incr("exec_morsels", morsels)
            self._metrics.set_gauge("exec_queue_depth", self.queue_depth)

    def morsel_completed(self, rows: int) -> None:
        with self._lock:
            self.morsels_completed += 1
            self.rows_processed += rows
            self.queue_depth = max(0, self.queue_depth - 1)

    def fragment_finished(
        self, busy_ns: int, wall_ns: int, workers: int, aborted_morsels: int = 0
    ) -> None:
        with self._lock:
            self.fragments_completed += 1
            self.busy_ns += busy_ns
            self.wall_ns += wall_ns
            self.queue_depth = max(0, self.queue_depth - aborted_morsels)
            denom = wall_ns * max(1, workers)
            self.last_utilization = busy_ns / denom if denom > 0 else 0.0
        if self._metrics is not None:
            self._metrics.set_gauge(
                "exec_worker_utilization", self.last_utilization
            )
            self._metrics.set_gauge("exec_queue_depth", self.queue_depth)

    def snapshot(self) -> dict:
        """A consistent point-in-time copy for ``sys.exec_stats``."""
        with self._lock:
            return {
                "fragments_started": self.fragments_started,
                "fragments_completed": self.fragments_completed,
                "morsels_dispatched": self.morsels_dispatched,
                "morsels_completed": self.morsels_completed,
                "rows_processed": self.rows_processed,
                "queue_depth": self.queue_depth,
                "busy_ms": self.busy_ns / 1e6,
                "wall_ms": self.wall_ns / 1e6,
                "last_workers": self.last_workers,
                "last_utilization": self.last_utilization,
            }
