"""The morsel dispatcher: runs one fragment plan over the worker pool.

:func:`try_morsel_execute` is called by the interpreter before its
sequential loop.  When the program has a fragment plan and the input is
large enough, it:

1. evaluates the prelude (constant maps) and binds the fragment table's
   full columns on the coordinator;
2. splits the table into morsels and starts one *runner* task per worker
   on the database's shared pool — runners pull morsel indexes from a
   shared counter (dynamic dispatch: fast workers take more morsels);
3. each runner executes the whole fragment over its morsel — selection
   vectors, intermediates, and partial aggregate states stay local to
   the worker, no synchronization inside the pipeline;
4. the coordinator merges at the breaker: packed live-out vectors are
   concatenated in morsel order (selection vectors re-based to global
   row ids), partial aggregate states are combined by the merge kernels;
5. the interpreter resumes with the suffix instructions, skipping every
   var the fragment already produced.

Returns the skip-var set on success, or ``None`` when the program is not
morselable (the interpreter then runs it unchanged).  Any worker error
aborts the remaining morsels and re-raises on the coordinator.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.exec import partial as P
from repro.exec.fragments import analyze_program
from repro.exec.morsels import morsel_bounds, pack_values
from repro.mal import operators as ops
from repro.mal.vector_eval import eval_pred, eval_value
from repro.mal.vectors import V, vec_from_column, vec_to_column

__all__ = ["try_morsel_execute"]


def try_morsel_execute(interp, program):
    ctx = interp.ctx
    config = ctx.config
    plan = analyze_program(program)
    if plan is None:
        return None

    # bind the fragment table's columns on the coordinator (full columns:
    # the suffix may read them, and morsels slice them zero-copy)
    for instr in plan.binds:
        interp._values[instr.var] = interp._op_bind(instr)
    nrows = len(interp._values[plan.binds[0].var].data)
    if nrows < config.min_parallel_rows:
        return None
    workers = max(1, config.max_workers)
    bounds = morsel_bounds(nrows, config.morsel_rows, workers)
    if len(bounds) <= 1:
        return None

    # prelude: constant expressions evaluated once, shared read-only
    for instr in plan.prelude:
        interp._values[instr.var] = interp._op_map(instr)
    shared = {instr.var: interp._values[instr.var] for instr in plan.prelude}
    columns = {instr.var: interp._values[instr.var] for instr in plan.binds}

    nmorsels = len(bounds)
    workers = min(workers, nmorsels)
    cluster = plan.cluster
    spans = ctx.spans
    deep = spans is not None and spans.deep
    stats = getattr(ctx.database, "exec_stats", None)

    frag_span = (
        spans.begin(
            "fragment", "fragment", table=plan.table_name,
            morsels=nmorsels, workers=workers,
            instructions=len(plan.fragment),
        )
        if deep
        else None
    )
    if stats is not None:
        stats.fragment_started(nmorsels, workers)

    results: list = [None] * nmorsels
    lock = threading.Lock()
    cursor = [0]
    abort = threading.Event()

    def claim():
        if abort.is_set():
            return None
        with lock:
            index = cursor[0]
            if index >= nmorsels:
                return None
            cursor[0] = index + 1
            return index

    def run_morsel(index):
        start, stop = bounds[index]
        values = dict(shared)
        for instr in plan.fragment:
            op = instr.op
            if op == "bind":
                col = columns[instr.var]
                values[instr.var] = V(col.type, col.data[start:stop], col.heap)
            elif op == "map":
                expression, input_vars = instr.args
                inputs = [values[v] for v in input_vars]
                result = eval_value(expression, inputs, ctx)
                if isinstance(result, V) and result.is_scalar:
                    # always materialize inside a morsel: a scalar from one
                    # morsel and an array from another would not pack
                    n = _vectors_length(inputs)
                    result = vec_from_column(vec_to_column(result, n))
                values[instr.var] = result
            elif op == "pred":
                expression, input_vars = instr.args
                inputs = [values[v] for v in input_vars]
                values[instr.var] = eval_pred(expression, inputs, ctx)
            elif op == "ids":
                predicate = values[instr.args[0]]
                values[instr.var] = np.flatnonzero(
                    predicate.definite()
                ).astype(np.int64)
            else:  # take
                vec = values[instr.args[0]]
                ids = values[instr.args[1]]
                if vec.is_scalar:
                    values[instr.var] = vec_from_column(
                        vec_to_column(vec, len(ids))
                    )
                else:
                    values[instr.var] = vec.take(ids)
        packed = {v: values[v] for v in plan.packed_vars}
        domains = {
            v: len(values[d]) for v, d in plan.ids_domains.items()
        }
        partials = (
            _morsel_partials(cluster, values) if cluster is not None else None
        )
        return packed, domains, partials

    def runner():
        busy = 0
        while True:
            index = claim()
            if index is None:
                return busy
            ctx.check_deadline()
            t0 = time.perf_counter_ns()
            out = run_morsel(index)
            t1 = time.perf_counter_ns()
            busy += t1 - t0
            results[index] = out
            rows = bounds[index][1] - bounds[index][0]
            if deep:
                spans.record(
                    "morsel", "morsel", t0, t1, parent=frag_span,
                    rows=rows, index=index,
                    worker=threading.current_thread().name,
                )
            if spans is not None:
                spans.add_rows(rows)
            if stats is not None:
                stats.morsel_completed(rows)

    wall_start = time.perf_counter_ns()
    busy_ns = 0
    error = None
    if workers == 1:
        try:
            busy_ns = runner()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            abort.set()
            error = exc
    else:
        pool = ctx.database.thread_pool
        futures = [pool.submit(runner) for _ in range(workers)]
        for future in futures:
            try:
                busy_ns += future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                abort.set()
                if error is None:
                    error = exc
    wall_ns = time.perf_counter_ns() - wall_start
    if stats is not None:
        with lock:
            aborted = nmorsels - cursor[0] + (1 if error is not None else 0)
        stats.fragment_finished(busy_ns, wall_ns, workers, max(0, aborted))
    if error is not None:
        if frag_span is not None:
            spans.end(frag_span, status="error")
        raise error

    _merge(interp, plan, results)
    if frag_span is not None:
        spans.end(frag_span, rows_out=nrows)
    return plan.skip_vars


def _vectors_length(inputs):
    for vec in inputs:
        if isinstance(vec, V) and not vec.is_scalar:
            return len(vec.data)
    return 1


def _zero_gids(n):
    return np.zeros(n, dtype=np.int64)


def _morsel_partials(cluster, values):
    """Thread-local partial aggregate states of one morsel."""
    if cluster.groupby is not None:
        key_vars = cluster.groupby.args[0]
        gids, reps, ngroups = ops.group_by([values[v] for v in key_vars])
        key_reps = [values[v].take(reps) for v in key_vars]
        states = [
            P.partial_aggregate(
                agg.args[0],
                values[agg.args[1]] if agg.args[1] is not None else None,
                gids,
                ngroups,
            )
            for agg in cluster.aggs
        ]
        return ngroups, key_reps, states

    states = []
    for agg in cluster.aggs:
        func, arg_var = agg.args[0], agg.args[1]
        anchor_var = agg.args[5]
        if arg_var is None:  # COUNT(*): cardinality comes from the anchor
            n = len(values[anchor_var].data)
            states.append(
                P.partial_aggregate("count_star", None, _zero_gids(n), 1)
            )
            continue
        arg = values[arg_var]
        if arg.is_scalar:
            n = len(values[anchor_var].data)
        else:
            n = len(arg.data)
        states.append(P.partial_aggregate(func, arg, _zero_gids(n), 1))
    return 1, [], states


def _merge(interp, plan, results):
    """Combine per-morsel outputs into the interpreter's value table."""
    # 1. packed live-out vectors, concatenated in morsel order
    for var in plan.packed_vars:
        parts = [r[0][var] for r in results]
        if var in plan.ids_domains:
            # selection vectors hold morsel-local row ids; re-base each
            # morsel by the running length of its predicate's domain
            offset = 0
            rebased = []
            for part, result in zip(parts, results):
                rebased.append(part + offset)
                offset += result[1][var]
            interp._values[var] = np.concatenate(rebased)
        else:
            interp._values[var] = pack_values(parts)

    cluster = plan.cluster
    if cluster is None:
        return

    # 2. merge partial aggregate states at the breaker
    if cluster.groupby is not None:
        key_vars = cluster.groupby.args[0]
        # re-group the morsels' group representatives: every local group
        # maps to one global group, deterministically ordered by key value
        # (the same order the blocking group_by kernel produces)
        merged_keys = [
            pack_values([r[2][1][k] for r in results])
            for k in range(len(key_vars))
        ]
        ggids, greps, ngroups = ops.group_by(merged_keys)
        gid_maps = []
        offset = 0
        for r in results:
            local_groups = r[2][0]
            gid_maps.append(ggids[offset:offset + local_groups])
            offset += local_groups
        for take in cluster.key_takes:
            key_index = key_vars.index(take.args[0])
            interp._values[take.var] = merged_keys[key_index].take(greps)
    else:
        ngroups = 1
        gid_maps = [_zero_gids(r[2][0]) for r in results]

    for index, agg in enumerate(cluster.aggs):
        states = [r[2][2][index] for r in results]
        values, null_mask = P.merge_partials(states, gid_maps, ngroups)
        interp._values[agg.var] = interp._wrap_agg(
            values, null_mask, agg.args[6]
        )
