"""Pipeline-breaker analysis over compiled MAL programs.

A *fragment* is the maximal dataflow region of a program that can run
morsel-at-a-time over one base table: ``bind`` (sliced per morsel),
parallelizable ``map``/``pred``, ``ids`` (the thread-local selection
vector), and ``take`` through those selections.  Everything else is a
*pipeline breaker* in the paper's terminology — sort, top-N, distinct,
set operations, joins, and full aggregation consume whole columns.

Two breaker treatments exist:

* an **aggregate cluster** (``groupby``/``gb_ids``/``gb_reps`` plus the
  ``agg`` instructions over it, or bare global ``agg`` instructions) is
  absorbed into the fragment: each morsel computes partial per-group
  states and the executor merges them (``repro.exec.partial``);
* any other consumer forces a **pack**: the fragment's live-out vectors
  are concatenated in morsel order and the interpreter resumes with the
  remaining instructions, seeing exactly the values sequential execution
  would have produced.

The analysis is static (it never looks at data), runs once per compiled
program, and is cached on the program object — plan-cache hits reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mal.program import Instruction, MALProgram
from repro.obs.trace import instruction_inputs

__all__ = [
    "AggCluster",
    "FragmentPlan",
    "analyze_program",
    "render_fragments",
    "SUPPORTED_PARTIAL_FUNCS",
]

#: aggregate functions with a partial/combine decomposition in
#: ``repro.exec.partial`` (DISTINCT variants are never decomposable —
#: they fall back to pack mode automatically)
SUPPORTED_PARTIAL_FUNCS = frozenset(
    ["count_star", "count", "sum", "avg", "min", "max", "median",
     "stddev", "var"]
)

#: ops that may run inside a fragment (everything else breaks the pipeline)
_FRAGMENT_OPS = frozenset(["bind", "map", "pred", "ids", "take"])


@dataclass
class AggCluster:
    """One breaker absorbed as partial aggregation.

    ``groupby is None`` means global (ungrouped) aggregates.  ``key_takes``
    are the ``take(key, reps)`` instructions materializing the output key
    columns; ``aggs`` the ``agg`` instructions merged from partial states.
    """

    groupby: Instruction | None
    gb_ids: Instruction | None
    gb_reps: Instruction | None
    key_takes: list = field(default_factory=list)
    aggs: list = field(default_factory=list)

    @property
    def internal_vars(self) -> frozenset:
        """Vars defined by the cluster that the suffix never sees."""
        vars_ = set()
        for instr in (self.groupby, self.gb_ids, self.gb_reps):
            if instr is not None:
                vars_.add(instr.var)
        return frozenset(vars_)

    @property
    def output_vars(self) -> frozenset:
        """Vars the executor seeds from the merged states."""
        return frozenset(
            [i.var for i in self.key_takes] + [i.var for i in self.aggs]
        )


@dataclass
class FragmentPlan:
    """The morsel-execution recipe for one compiled program."""

    table_name: str
    #: constant ``map`` instructions evaluated once on the coordinator
    prelude: list
    #: fragment instructions in program order (includes the binds)
    fragment: list
    #: the ``bind`` instructions of the fragment's table
    binds: list
    cluster: AggCluster | None
    #: fragment vars consumed by the suffix -> packed across morsels
    packed_vars: tuple
    #: packed ``ids`` vars -> the var whose per-morsel length offsets them
    ids_domains: dict
    #: every var the interpreter must skip (fragment + prelude + cluster)
    skip_vars: frozenset

    @property
    def parallel_width(self) -> int:
        """Number of non-bind pipeline instructions run per morsel."""
        return sum(1 for i in self.fragment if i.op != "bind")


def analyze_program(program: MALProgram) -> FragmentPlan | None:
    """The cached fragment plan of a program (None when not morselable)."""
    try:
        return program._fragment_plan  # type: ignore[attr-defined]
    except AttributeError:
        pass
    plan = _analyze(program)
    program._fragment_plan = plan  # idempotent under concurrent analysis
    return plan


def _analyze(program: MALProgram) -> FragmentPlan | None:
    consumers: dict = {}
    for instr in program.instructions:
        for var in instruction_inputs(instr):
            consumers.setdefault(var, []).append(instr)

    table_name = None
    prelude: list = []
    fragment: list = []
    binds: list = []
    prelude_vars: set = set()
    fragment_vars: set = set()
    for instr in program.instructions:
        op = instr.op
        if op == "bind":
            if table_name is None:
                table_name = instr.args[0]
            if instr.args[0] == table_name:
                fragment.append(instr)
                binds.append(instr)
                fragment_vars.add(instr.var)
        elif op in ("map", "pred"):
            if not instr.parallelizable:
                continue
            input_vars = instr.args[1]
            known = fragment_vars | prelude_vars
            if (
                input_vars
                and all(v in known for v in input_vars)
                and any(v in fragment_vars for v in input_vars)
            ):
                fragment.append(instr)
                fragment_vars.add(instr.var)
            elif op == "map" and all(v in prelude_vars for v in input_vars):
                # constant expression (possibly over other constants):
                # evaluated once, broadcast-safe inside every morsel
                prelude.append(instr)
                prelude_vars.add(instr.var)
        elif op == "ids":
            if instr.args[0] in fragment_vars:
                fragment.append(instr)
                fragment_vars.add(instr.var)
        elif op == "take":
            var, ids_var = instr.args
            if ids_var in fragment_vars and (
                var in fragment_vars or var in prelude_vars
            ):
                fragment.append(instr)
                fragment_vars.add(instr.var)
        # every other op is a pipeline breaker: never enters the fragment

    if table_name is None:
        return None

    cluster = _detect_cluster(
        program, fragment_vars, prelude_vars, consumers
    )
    if cluster is None and not any(
        instr.op in ("map", "pred") for instr in fragment
    ):
        return None  # no pipeline work and no partial aggregation: the
        # morsel path would only re-concatenate unfiltered binds
    cluster_vars = (
        (cluster.internal_vars | cluster.output_vars)
        if cluster is not None
        else frozenset()
    )

    # liveness: fragment vars any outside instruction still reads get packed
    packed: list = []
    ids_domains: dict = {}
    cluster_members = set()
    if cluster is not None:
        members = [cluster.groupby, cluster.gb_ids, cluster.gb_reps]
        members += cluster.key_takes + cluster.aggs
        cluster_members = {id(i) for i in members if i is not None}
    for instr in fragment:
        escapes = any(
            id(c) not in cluster_members and c.var not in fragment_vars
            for c in consumers.get(instr.var, ())
        )
        if not escapes:
            continue
        if instr.op == "bind":
            continue  # seeded with the full column, nothing to pack
        if instr.op == "ids":
            # selection vectors index into their predicate's domain; the
            # packer re-bases each morsel by that domain's running length
            ids_domains[instr.var] = instr.args[0]
        packed.append(instr.var)

    skip_vars = frozenset(fragment_vars | prelude_vars | cluster_vars)
    return FragmentPlan(
        table_name=table_name,
        prelude=prelude,
        fragment=fragment,
        binds=binds,
        cluster=cluster,
        packed_vars=tuple(packed),
        ids_domains=ids_domains,
        skip_vars=skip_vars,
    )


def _detect_cluster(program, fragment_vars, prelude_vars, consumers):
    """Recognize the codegen aggregation pattern over fragment vars.

    Grouped form::

        G  := groupby(keys...)         keys all in the fragment
        I  := gb_ids(G);  R := gb_reps(G)
        Kx := take(key_x, R)           output key columns
        Ax := agg(f, arg, I, G, ...)   every agg partial-decomposable

    Global form: ``agg(f, arg, None, None, ...)`` instructions whose
    argument and anchor live in the fragment.  Any extra consumer of the
    grouping vars (or an unsupported aggregate) vetoes the cluster — the
    program still runs, in pack mode.
    """
    arg_ok = fragment_vars | prelude_vars

    groupby = next(
        (
            instr
            for instr in program.instructions
            if instr.op == "groupby"
            and all(v in fragment_vars for v in instr.args[0])
        ),
        None,
    )
    if groupby is not None:
        gb_consumers = consumers.get(groupby.var, [])
        gb_ids = next(
            (c for c in gb_consumers if c.op == "gb_ids"), None
        )
        gb_reps = next(
            (c for c in gb_consumers if c.op == "gb_reps"), None
        )
        aggs = [
            c for c in gb_consumers
            if c.op == "agg" and c.args[3] == groupby.var
        ]
        key_takes = (
            [
                c for c in consumers.get(gb_reps.var, [])
                if c.op == "take" and c.args[1] == gb_reps.var
            ]
            if gb_reps is not None
            else []
        )
        agg_ids = {id(a) for a in aggs}
        take_ids = {id(t) for t in key_takes}
        ok = (
            gb_ids is not None
            and aggs
            and all(
                agg.args[0] in SUPPORTED_PARTIAL_FUNCS
                and not agg.args[4]  # DISTINCT is not decomposable
                # FILTER predicates see whole-relation rows, not morsels
                and (len(agg.args) <= 7 or agg.args[7] is None)
                and (agg.args[1] is None or agg.args[1] in arg_ok)
                and agg.args[2] == gb_ids.var
                for agg in aggs
            )
            and all(take.args[0] in fragment_vars for take in key_takes)
            # the grouping state must be fully private to the cluster
            and all(
                c.op in ("gb_ids", "gb_reps") or id(c) in agg_ids
                for c in gb_consumers
            )
            and all(
                id(c) in agg_ids for c in consumers.get(gb_ids.var, [])
            )
            and (
                gb_reps is None
                or all(
                    id(c) in take_ids
                    for c in consumers.get(gb_reps.var, [])
                )
            )
        )
        if ok:
            return AggCluster(groupby, gb_ids, gb_reps, key_takes, aggs)
        return None

    aggs = [
        instr
        for instr in program.instructions
        if instr.op == "agg"
        and instr.args[3] is None
        and instr.args[0] in SUPPORTED_PARTIAL_FUNCS
        and not instr.args[4]
        and (len(instr.args) <= 7 or instr.args[7] is None)
        and (instr.args[1] is None or instr.args[1] in arg_ok)
        # the anchor fixes the broadcast cardinality; it must be a
        # fragment vector (non-scalar by construction) or absent with a
        # vector argument
        and (
            instr.args[5] in fragment_vars
            or (instr.args[5] is None and instr.args[1] in fragment_vars)
        )
    ]
    if aggs:
        return AggCluster(None, None, None, [], aggs)
    return None


def render_fragments(program: MALProgram) -> list:
    """EXPLAIN lines describing the morsel-parallel fragment, if any."""
    plan = analyze_program(program)
    if plan is None:
        return ["-- fragments: none (pipeline runs sequentially)"]
    lines = [
        f"-- fragment over {plan.table_name}"
        f" ({len(plan.fragment)} instructions, morsel-parallel):"
    ]
    lines.extend("--   " + instr.render() for instr in plan.fragment)
    cluster = plan.cluster
    if cluster is not None:
        funcs = ", ".join(agg.args[0] for agg in cluster.aggs)
        kind = (
            f"group-by merge over {len(cluster.groupby.args[0])} key(s)"
            if cluster.groupby is not None
            else "global merge"
        )
        lines.append(
            f"-- breaker: partial aggregate {kind} [{funcs}]"
        )
    else:
        lines.append(
            "-- breaker: pack morsels -> sequential suffix"
        )
    return lines
