"""Morsel-driven pipeline-parallel query execution (``repro.exec``).

The interpreter executes MAL programs column-at-a-time; its legacy
parallel tactic chunks *one* instruction at a time with a full barrier
after each, so every intermediate is still materialized globally.  This
package is the second execution engine: it partitions a compiled program
into pipeline *fragments* at blocking boundaries (sort, full aggregate,
top-N merge, join build sides), splits the base table into fixed-size
morsels, and runs the whole fragment per morsel on the shared worker
pool — selection vectors and partial aggregate states stay thread-local,
and merge kernels combine partial states at the breaker (HyPer's
morsel-driven parallelism, grafted onto the paper's Figure 2 mitosis).

Modules (imported lazily to keep ``repro.mal`` -> ``repro.exec.morsels``
free of import cycles):

``morsels``    the shared morsel splitter and chunk packer
``fragments``  pipeline-breaker analysis over ``repro.mal.program``
``partial``    partial/combine variants of the aggregate kernels
``executor``   the morsel dispatcher driving the worker pool
``stats``      live executor counters behind ``sys.exec_stats``
"""

from __future__ import annotations

__all__ = [
    "analyze_program",
    "morsel_bounds",
    "render_fragments",
    "try_morsel_execute",
    "ExecStats",
]

_LAZY = {
    "analyze_program": "repro.exec.fragments",
    "render_fragments": "repro.exec.fragments",
    "morsel_bounds": "repro.exec.morsels",
    "try_morsel_execute": "repro.exec.executor",
    "ExecStats": "repro.exec.stats",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.exec' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
