"""Automatic and manual secondary indexes (paper section 3.1).

Three structures, with MonetDB's lifecycle rules:

* :class:`~repro.index.imprints.Imprint` — a per-block bitmap over value
  ranges, built *automatically* the first time a range query hits a
  persistent column, destroyed by any modification of the column.
* :class:`~repro.index.hashindex.HashIndex` — built automatically when a
  column is used as a grouping or equi-join key; survives appends (it is
  refreshed), destroyed by updates or deletes.
* :class:`~repro.index.orderindex.OrderIndex` — only built on explicit
  ``CREATE ORDER INDEX``; answers point/range queries by binary search and
  feeds merge joins.

The :class:`~repro.index.manager.IndexManager` owns all instances and
enforces the invalidation rules via table-modification listeners.
"""

from repro.index.imprints import Imprint
from repro.index.hashindex import HashIndex
from repro.index.orderindex import OrderIndex
from repro.index.manager import IndexManager

__all__ = ["Imprint", "HashIndex", "OrderIndex", "IndexManager"]
