"""Hash index over a column, built automatically for join/group keys.

Physically a CSR layout over the *sorted distinct values* of the column:
``values`` (sorted unique), ``starts`` (group offsets), and ``rowids``
(row numbers ordered by value).  Probing vectorizes to one
``np.searchsorted`` per probe array — behaviorally a bulk hash lookup,
which is what MonetDB's hash BATs provide to joins and group-bys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashIndex"]


class HashIndex:
    """CSR-shaped value -> rowids index over one storage array."""

    __slots__ = ("values", "starts", "rowids", "nrows")

    def __init__(self, data: np.ndarray):
        order = np.argsort(data, kind="stable")
        sorted_values = data[order]
        boundaries = np.empty(len(data), dtype=bool)
        if len(data):
            boundaries[0] = True
            np.not_equal(sorted_values[1:], sorted_values[:-1], out=boundaries[1:])
        self.values = sorted_values[boundaries]
        self.starts = np.flatnonzero(boundaries)
        self.rowids = order.astype(np.int64)
        self.nrows = len(data)

    def group_count(self) -> int:
        """Number of distinct values."""
        return len(self.values)

    def group_ids(self) -> np.ndarray:
        """Per-row dense group id (rows sharing a value share an id)."""
        gids = np.empty(self.nrows, dtype=np.int64)
        sizes = np.diff(np.append(self.starts, self.nrows))
        gids[self.rowids] = np.repeat(np.arange(len(self.values)), sizes)
        return gids

    def representatives(self) -> np.ndarray:
        """One row id per distinct value (the first in value order)."""
        return self.rowids[self.starts]

    def probe(self, probes: np.ndarray):
        """Bulk lookup: returns (probe_idx, row_idx) match pairs.

        For every probe value, every row holding that value is paired with
        the probe's position — the building block of a hash join where this
        column is the build side.
        """
        positions = np.searchsorted(self.values, probes)
        positions = np.clip(positions, 0, max(0, len(self.values) - 1))
        hit = np.zeros(len(probes), dtype=bool)
        if len(self.values):
            hit = self.values[positions] == probes
        probe_idx_parts = []
        row_idx_parts = []
        hit_positions = np.flatnonzero(hit)
        if len(hit_positions) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        group = positions[hit_positions]
        ends = np.append(self.starts, self.nrows)
        counts = ends[group + 1] - ends[group]
        probe_idx = np.repeat(hit_positions, counts)
        # gather rowids per matched group: offsets within each group
        total = int(counts.sum())
        # build flat index: for each match, rowids[start : start+count]
        starts = ends[group]
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        row_idx = self.rowids[np.repeat(starts, counts) + offsets]
        return probe_idx, row_idx

    def contains(self, probes: np.ndarray) -> np.ndarray:
        """Vectorized membership test (semi-join support)."""
        if not len(self.values):
            return np.zeros(len(probes), dtype=bool)
        positions = np.searchsorted(self.values, probes)
        positions = np.clip(positions, 0, len(self.values) - 1)
        return self.values[positions] == probes

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.starts.nbytes + self.rowids.nbytes
