"""Order index: explicit sorted-rowid index (``CREATE ORDER INDEX``).

Paper section 3.1: *"the order index is an array of row numbers in the sort
order specified by the user. The order index is used to speed up point and
range queries, as well as equi-joins and range-joins. Point and range
queries are answered by using a binary search on the order index. For
joins, the order index is used for a merge join."*
"""

from __future__ import annotations

import numpy as np

__all__ = ["OrderIndex"]


class OrderIndex:
    """Sorted row-number array over one storage array."""

    __slots__ = ("order", "sorted_values", "nrows")

    def __init__(self, data: np.ndarray):
        self.order = np.argsort(data, kind="stable").astype(np.int64)
        self.sorted_values = data[self.order]
        self.nrows = len(data)

    def point_rows(self, value) -> np.ndarray:
        """Row ids holding exactly ``value`` (binary search, O(log n))."""
        lo = np.searchsorted(self.sorted_values, value, side="left")
        hi = np.searchsorted(self.sorted_values, value, side="right")
        return np.sort(self.order[lo:hi])

    def range_rows(
        self,
        lo=None,
        hi=None,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> np.ndarray:
        """Row ids with values in the interval [lo, hi] (None = open end)."""
        start = 0
        stop = self.nrows
        if lo is not None:
            start = np.searchsorted(
                self.sorted_values, lo, side="right" if lo_open else "left"
            )
        if hi is not None:
            stop = np.searchsorted(
                self.sorted_values, hi, side="left" if hi_open else "right"
            )
        return np.sort(self.order[start:stop])

    def range_mask(self, lo=None, hi=None, lo_open=False, hi_open=False) -> np.ndarray:
        """Boolean row mask version of :meth:`range_rows`."""
        mask = np.zeros(self.nrows, dtype=bool)
        mask[self.range_rows(lo, hi, lo_open, hi_open)] = True
        return mask

    def merge_join(self, other: "OrderIndex"):
        """Equi-join two order-indexed columns by merging sort orders.

        Returns (left_rows, right_rows) match pairs.
        """
        left_vals, right_vals = self.sorted_values, other.sorted_values
        li = ri = 0
        left_out: list[np.ndarray] = []
        right_out: list[np.ndarray] = []
        nl, nr = len(left_vals), len(right_vals)
        while li < nl and ri < nr:
            lv, rv = left_vals[li], right_vals[ri]
            if lv < rv:
                li = int(np.searchsorted(left_vals, rv, side="left"))
            elif rv < lv:
                ri = int(np.searchsorted(right_vals, lv, side="left"))
            else:
                le = int(np.searchsorted(left_vals, lv, side="right"))
                re = int(np.searchsorted(right_vals, rv, side="right"))
                lrows = self.order[li:le]
                rrows = other.order[ri:re]
                left_out.append(np.repeat(lrows, len(rrows)))
                right_out.append(np.tile(rrows, len(lrows)))
                li, ri = le, re
        if not left_out:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(left_out), np.concatenate(right_out)

    @property
    def nbytes(self) -> int:
        return self.order.nbytes + self.sorted_values.nbytes
