"""Index lifecycle management with MonetDB's invalidation rules.

Paper section 3.1:

* imprints: auto-created on the first range query over a persistent column,
  persisted, **destroyed when the column is modified** (any change).
* hash tables: auto-created when a column is used for grouping or as an
  equi-join key; **destroyed on updates/deletes, maintained on appends**.
* order indexes: only via ``CREATE ORDER INDEX``; invalidated like imprints.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import CatalogError
from repro.index.hashindex import HashIndex
from repro.index.imprints import Imprint
from repro.index.orderindex import OrderIndex
from repro.storage.table import Table, TableVersion

__all__ = ["IndexManager", "IndexStats"]


class IndexStats:
    """Counters exposed for tests and the ablation benchmarks."""

    __slots__ = (
        "imprints_built",
        "imprint_hits",
        "hashes_built",
        "hash_hits",
        "hash_refreshes",
        "order_hits",
        "invalidations",
    )

    def __init__(self):
        self.imprints_built = 0
        self.imprint_hits = 0
        self.hashes_built = 0
        self.hash_hits = 0
        self.hash_refreshes = 0
        self.order_hits = 0
        self.invalidations = 0


class IndexManager:
    """Owns all secondary indexes of one database instance."""

    def __init__(self, auto_imprints: bool = True, auto_hash: bool = True):
        self._lock = threading.RLock()
        self.auto_imprints = auto_imprints
        self.auto_hash = auto_hash
        # (table_lower, colpos) -> (index, table_version)
        self._imprints: dict = {}
        self._hashes: dict = {}
        self._orders: dict = {}
        self._order_names: dict = {}  # index name -> (table, colpos)
        self.stats = IndexStats()

    # -- lifecycle hooks -------------------------------------------------------

    def attach_table(self, table: Table) -> None:
        """Register invalidation listeners on a table."""
        table.add_modification_listener(self._on_modification)

    def detach_table(self, table_name: str) -> None:
        """Drop every index belonging to a dropped table."""
        key_prefix = table_name.lower()
        with self._lock:
            for store in (self._imprints, self._hashes, self._orders):
                for key in [k for k in store if k[0] == key_prefix]:
                    del store[key]
            for name in [
                n for n, (t, _) in self._order_names.items() if t == key_prefix
            ]:
                del self._order_names[name]

    def _on_modification(self, change_kind: str, table: Table) -> None:
        name = table.schema.name.lower()
        with self._lock:
            # imprints and order indexes die on ANY modification
            for store in (self._imprints, self._orders):
                doomed = [k for k in store if k[0] == name]
                for key in doomed:
                    del store[key]
                    self.stats.invalidations += 1
            hash_keys = [k for k in self._hashes if k[0] == name]
            if change_kind in ("update", "delete", "overwrite"):
                for key in hash_keys:
                    del self._hashes[key]
                    self.stats.invalidations += 1
            # appends: hash indexes are refreshed lazily on next use;
            # mark them stale by remembering the version they were built at.

    # -- imprints ----------------------------------------------------------------

    def imprint_for(
        self, table: Table, version: TableVersion, colpos: int
    ) -> Imprint | None:
        """Fetch (or auto-build) the imprint of a column, if applicable."""
        if not self.auto_imprints:
            return None
        column = version.columns[colpos]
        if column.type.is_variable or len(column) < 2 * 64:
            return None
        key = (table.schema.name.lower(), colpos)
        with self._lock:
            entry = self._imprints.get(key)
            if entry is not None and entry[1] == version.version:
                self.stats.imprint_hits += 1
                return entry[0]
            imprint = Imprint(column.data)
            self._imprints[key] = (imprint, version.version)
            self.stats.imprints_built += 1
            return imprint

    # -- hash indexes ----------------------------------------------------------------

    def hash_for(
        self, table: Table, version: TableVersion, colpos: int
    ) -> HashIndex | None:
        """Fetch (or auto-build/refresh) the hash index of a join/group key."""
        if not self.auto_hash:
            return None
        column = version.columns[colpos]
        if column.type.is_variable or len(column) < 64:
            return None
        key = (table.schema.name.lower(), colpos)
        with self._lock:
            entry = self._hashes.get(key)
            if entry is not None:
                if entry[1] == version.version:
                    self.stats.hash_hits += 1
                    return entry[0]
                # stale after an append: refresh (paper: maintained on append)
                self.stats.hash_refreshes += 1
            else:
                self.stats.hashes_built += 1
            index = HashIndex(column.data)
            self._hashes[key] = (index, version.version)
            return index

    # -- order indexes --------------------------------------------------------------

    def create_order_index(
        self, name: str, table: Table, version: TableVersion, colpos: int
    ) -> OrderIndex:
        """Explicit CREATE ORDER INDEX."""
        key = (table.schema.name.lower(), colpos)
        with self._lock:
            if name.lower() in self._order_names:
                raise CatalogError(f"index {name!r} already exists")
            index = OrderIndex(np.asarray(version.columns[colpos].data))
            self._orders[key] = (index, version.version)
            self._order_names[name.lower()] = key
            return index

    def drop_order_index(self, name: str) -> None:
        with self._lock:
            key = self._order_names.pop(name.lower(), None)
            if key is None:
                raise CatalogError(f"no such index: {name!r}")
            self._orders.pop(key, None)

    def order_for(
        self, table: Table, version: TableVersion, colpos: int
    ) -> OrderIndex | None:
        key = (table.schema.name.lower(), colpos)
        with self._lock:
            entry = self._orders.get(key)
            if entry is None or entry[1] != version.version:
                return None
            self.stats.order_hits += 1
            return entry[0]

    # -- introspection (sys.storage) ---------------------------------------------

    def bytes_for(self, table_name: str, colpos: int) -> int:
        """Total in-memory bytes of every index over one column."""
        key = (table_name.lower(), colpos)
        total = 0
        with self._lock:
            for store in (self._imprints, self._hashes, self._orders):
                entry = store.get(key)
                if entry is not None:
                    total += entry[0].nbytes
        return total

    def clear(self) -> None:
        """Drop all indexes (in-process shutdown)."""
        with self._lock:
            self._imprints.clear()
            self._hashes.clear()
            self._orders.clear()
            self._order_names.clear()
