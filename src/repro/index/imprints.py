"""Column imprints: a per-block range-bitmap secondary index.

Modeled on Sidirourgos & Kersten, "Column Imprints: A Secondary Index
Structure" (SIGMOD 2013), which MonetDB builds automatically for persistent
columns on the first range query (paper section 3.1).  For every block of
``BLOCK`` consecutive values we keep a 64-bit mask with one bit per
equi-width histogram bin; a range predicate turns into a bin mask, blocks
whose imprint does not intersect it are skipped wholesale, and only
candidate blocks are scanned exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Imprint", "BLOCK", "BINS"]

BLOCK = 64
BINS = 64


class Imprint:
    """Imprint over one numeric storage array."""

    __slots__ = ("lo", "hi", "scale", "masks", "nrows", "nblocks")

    def __init__(self, data: np.ndarray):
        values = data.astype(np.float64, copy=False)
        self.nrows = len(values)
        self.nblocks = (self.nrows + BLOCK - 1) // BLOCK
        if self.nrows == 0:
            self.lo = 0.0
            self.hi = 1.0
        else:
            self.lo = float(np.min(values))
            self.hi = float(np.max(values))
        span = self.hi - self.lo
        self.scale = (BINS - 1) / span if span > 0 else 0.0
        bins = self._bin_of(values)
        bits = np.left_shift(np.uint64(1), bins.astype(np.uint64))
        masks = np.zeros(self.nblocks, dtype=np.uint64)
        full, rem = divmod(self.nrows, BLOCK)
        if full:
            np.bitwise_or.reduce(
                bits[: full * BLOCK].reshape(full, BLOCK), axis=1, out=masks[:full]
            )
        if rem:
            masks[full] = np.bitwise_or.reduce(bits[full * BLOCK :])
        self.masks = masks

    def _bin_of(self, values: np.ndarray) -> np.ndarray:
        bins = ((values - self.lo) * self.scale).astype(np.int64)
        return np.clip(bins, 0, BINS - 1)

    def _range_mask(self, lo: float | None, hi: float | None) -> np.uint64:
        """Bin mask covering [lo, hi] (None = open end)."""
        lo_bin = 0 if lo is None else int(self._bin_of(np.array([lo]))[0])
        hi_bin = BINS - 1 if hi is None else int(self._bin_of(np.array([hi]))[0])
        if hi_bin < lo_bin:
            return np.uint64(0)
        width = hi_bin - lo_bin + 1
        if width >= 64:
            return np.uint64(0xFFFFFFFFFFFFFFFF)
        return np.uint64(((1 << width) - 1) << lo_bin)

    def candidate_blocks(self, lo: float | None, hi: float | None) -> np.ndarray:
        """Boolean mask of blocks that may contain values in [lo, hi]."""
        if (hi is not None and hi < self.lo) or (lo is not None and lo > self.hi):
            return np.zeros(self.nblocks, dtype=bool)  # outside column range
        mask = self._range_mask(lo, hi)
        return (self.masks & mask) != 0

    def candidate_rows(self, lo: float | None, hi: float | None) -> np.ndarray:
        """Boolean mask over rows covering every candidate block."""
        blocks = self.candidate_blocks(lo, hi)
        rows = np.repeat(blocks, BLOCK)[: self.nrows]
        return rows

    def pruned_fraction(self, lo: float | None, hi: float | None) -> float:
        """Fraction of blocks that a [lo, hi] scan can skip (for stats)."""
        blocks = self.candidate_blocks(lo, hi)
        if not len(blocks):
            return 0.0
        return 1.0 - float(blocks.sum()) / len(blocks)

    @property
    def nbytes(self) -> int:
        """Approximate index size."""
        return self.masks.nbytes + 48
