"""Exception hierarchy for the embedded database.

The paper (section 3.4, "Error Handling") stresses that an embedded database
must report errors as return values / exceptions to the host process instead
of writing to an output stream or calling ``exit``.  Every error raised by
this package derives from :class:`DatabaseError`, so embedding code can catch
a single type; nothing in the package ever terminates the process.
"""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "StartupError",
    "DatabaseLockedError",
    "ParseError",
    "BindError",
    "CatalogError",
    "TypeMismatchError",
    "ConstraintError",
    "TransactionError",
    "ConflictError",
    "ConversionError",
    "CopyError",
    "InterfaceError",
    "ProtocolError",
    "QueryTimeoutError",
    "OutOfMemoryError",
]


class DatabaseError(Exception):
    """Base class for every error raised by the repro database."""


class StartupError(DatabaseError):
    """The database could not be initialized (bad directory, corruption...)."""


class DatabaseLockedError(StartupError):
    """A second database instance was requested in the same process.

    Reproduces the "database locked" limitation described in section 5.1 of
    the paper: the engine keeps global state, so only one database can be
    open per process.
    """


class ParseError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(DatabaseError):
    """Name resolution or semantic analysis of a query failed."""


class CatalogError(DatabaseError):
    """A schema object is missing, duplicated, or malformed."""


class TypeMismatchError(BindError):
    """An expression combines incompatible types."""


class ConstraintError(DatabaseError):
    """A NOT NULL or type-domain constraint was violated by a write."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (commit without begin, ...)."""


class ConflictError(TransactionError):
    """Optimistic concurrency control detected a write-write conflict.

    MonetDB(Lite) uses optimistic concurrency control: transactions run on a
    snapshot and validation happens at commit.  A losing transaction aborts
    with this error and can simply be retried.
    """


class ConversionError(DatabaseError):
    """A value could not be converted between client and storage types."""


class CopyError(DatabaseError):
    """A COPY bulk load or export failed (bad file, malformed record, ...)."""


class InterfaceError(DatabaseError):
    """Misuse of the embedding API (closed connection, freed result, ...)."""


class ProtocolError(DatabaseError):
    """Malformed message on the client-server wire protocol."""


class QueryTimeoutError(DatabaseError):
    """A query exceeded the configured execution timeout."""


class OutOfMemoryError(DatabaseError):
    """A memory budget was exhausted (used by the frames library substrate)."""
